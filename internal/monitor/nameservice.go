package monitor

import (
	"sort"

	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/urpc"
)

// This file implements the name service and channel-setup machinery of
// §4.6: "A name service is used to locate other services in the system by
// mapping service names and properties to a service reference, which can be
// used to establish a channel to the service. Channel setup is performed by
// the monitors."
//
// The name service itself is a distinguished service domain on one core;
// lookups and registrations travel over the monitor network, and channel
// establishment is a three-way exchange between the two endpoint monitors
// that allocates the URPC rings (honouring the SKB's NUMA placement advice)
// and hands references to both parties.

// ServiceRef identifies a registered service endpoint.
type ServiceRef struct {
	Name string
	Core topo.CoreID
	// Properties carry small attribute key/values (e.g. "proto"="tcp"),
	// used by property-constrained lookups.
	Properties map[string]string
}

// NameService is the registry domain. It lives on one core; all access from
// other cores is monitor-mediated (charged as message round trips).
type NameService struct {
	net  *Network
	core topo.CoreID
	tab  map[string]ServiceRef
}

// NewNameService starts the registry on the given core.
func NewNameService(net *Network, core topo.CoreID) *NameService {
	return &NameService{net: net, core: core, tab: make(map[string]ServiceRef)}
}

// nsRTT charges the monitor-mediated round trip from core to the registry:
// an LRPC into the local monitor, a URPC round trip to the registry core
// (skipped for local callers) and the reply LRPC.
func (ns *NameService) nsRTT(p *sim.Proc, from topo.CoreID) {
	ns.net.Kern.Core(from).LRPC(p)
	if from != ns.core {
		m := ns.net.Sys.Machine()
		rtt := 2 * (m.TransferLat(ns.core, from) + m.TransferLat(from, ns.core))
		p.Sleep(rtt + 2*m.Costs.Dispatch)
	}
	ns.net.Kern.Core(from).LRPC(p)
}

// Register publishes a service under name with optional properties.
// Re-registering a name overwrites the previous entry (the newest instance
// wins, as with Barrelfish's nameservice).
func (ns *NameService) Register(p *sim.Proc, from topo.CoreID, name string, core topo.CoreID, props map[string]string) {
	ns.nsRTT(p, from)
	ns.tab[name] = ServiceRef{Name: name, Core: core, Properties: props}
}

// Lookup resolves a name to a service reference.
func (ns *NameService) Lookup(p *sim.Proc, from topo.CoreID, name string) (ServiceRef, bool) {
	ns.nsRTT(p, from)
	ref, ok := ns.tab[name]
	return ref, ok
}

// LookupByProperty returns all services carrying the given property
// key/value, sorted by name for determinism.
func (ns *NameService) LookupByProperty(p *sim.Proc, from topo.CoreID, key, value string) []ServiceRef {
	ns.nsRTT(p, from)
	var out []ServiceRef
	for _, ref := range ns.tab {
		if ref.Properties[key] == value {
			out = append(out, ref)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Unregister removes a name; it reports whether the name was present.
func (ns *NameService) Unregister(p *sim.Proc, from topo.CoreID, name string) bool {
	ns.nsRTT(p, from)
	_, ok := ns.tab[name]
	delete(ns.tab, name)
	return ok
}

// Binding is an established bidirectional channel between a client and a
// service, as produced by monitor-mediated channel setup.
type Binding struct {
	Tx *urpc.Channel // client -> service
	Rx *urpc.Channel // service -> client
}

// BindService performs the full §4.6 connection sequence from the client
// core: look the name up in the registry, then have the two monitors
// establish a URPC channel pair with ring buffers homed per the SKB's
// placement advice. It returns the client-side binding and the service-side
// binding (which the service's monitor delivers to the service).
func (ns *NameService) BindService(p *sim.Proc, client topo.CoreID, name string) (clientSide, serviceSide *Binding, ok bool) {
	ref, found := ns.Lookup(p, client, name)
	if !found {
		return nil, nil, false
	}
	clientSide, serviceSide = ns.net.SetupChannel(p, client, ref.Core)
	return clientSide, serviceSide, true
}

// SetupChannel has the monitors of the two cores allocate and exchange a
// URPC channel pair: a bind request travels to the peer monitor through the
// monitor network, rings are allocated per the SKB's NUMA advice (each
// direction's buffer on its receiver's socket), and the bind reply carries
// the ring references back. Both endpoints' bindings are returned.
func (n *Network) SetupChannel(p *sim.Proc, a, b topo.CoreID) (aSide, bSide *Binding) {
	monA := n.Monitor(a)
	n.Kern.Core(a).LRPC(p)
	op := Op{Kind: OpNone, ID: monA.nextOpID(), Origin: a}
	fut := monA.submit(p, &localReq{op: op, targets: []topo.CoreID{b}})
	fut.Await(p)
	n.Kern.Core(a).LRPC(p)

	tx := urpc.New(n.Sys, a, b, urpc.Options{Home: int(n.KB.AllocAdvice(b))})
	rx := urpc.New(n.Sys, b, a, urpc.Options{Home: int(n.KB.AllocAdvice(a))})
	return &Binding{Tx: tx, Rx: rx}, &Binding{Tx: rx, Rx: tx}
}
