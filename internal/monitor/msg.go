// Package monitor implements the user-space monitors of the multikernel
// (paper §4.4): one schedulable, single-core process per core that
// collectively coordinates all system-wide state. Monitors exchange
// cache-line-sized URPC messages over a full mesh of channels and run the
// agreement protocols of the paper's evaluation — one-phase commit for
// order-insensitive operations like TLB shootdown (§5.1) and two-phase
// commit for capability retyping and revocation (§5.2) — using NUMA-aware
// multicast trees computed by the system knowledge base.
package monitor

import (
	"fmt"

	"multikernel/internal/caps"
	"multikernel/internal/memory"
	"multikernel/internal/topo"
	"multikernel/internal/urpc"
)

// MsgKind identifies an inter-monitor message type (word 0 of the URPC
// message).
type MsgKind uint64

// Inter-monitor message kinds.
const (
	MsgInvalid MsgKind = iota
	// One-phase commit (shootdown / unmap).
	MsgShootdown    // origin asks target to invalidate a mapping
	MsgShootdownFwd // aggregation node forwards to socket-local children
	MsgShootdownAck // participant/aggregate acknowledges completion
	// Two-phase commit (retype / revoke).
	MsgPrepare     // phase 1 request
	MsgPrepareFwd  // phase 1 forwarded by an aggregation node
	MsgVote        // phase 1 response (word aux: 1 = yes, 0 = no)
	MsgDecision    // phase 2: commit (aux 1) or abort (aux 0)
	MsgDecisionFwd // phase 2 forwarded
	MsgDecisionAck // phase 2 response
	// Capability transfer (§4.8).
	MsgCapSend // carries a serialized capability
	MsgCapAck
	// Latency measurement (SKB population).
	MsgPing
	MsgPong
)

// OpKind identifies the coordinated operation carried by a protocol message.
type OpKind uint64

// Coordinated operation kinds.
const (
	OpNone     OpKind = iota
	OpUnmap           // remove/downgrade a mapping (1PC)
	OpRetype          // change memory usage (2PC)
	OpRevoke          // revoke a capability subtree (2PC)
	OpCoreDown        // take a core offline (1PC membership change)
	OpCoreUp          // bring a core online (1PC membership change)
)

// Op describes one coordinated operation over a physical range.
type Op struct {
	Kind    OpKind
	ID      uint64 // unique per initiator: origin<<32 | seq
	Origin  topo.CoreID
	Base    memory.Addr
	Bytes   uint64
	NewType caps.Type // for OpRetype
	Level   int       // for OpRetype page tables
}

// wire encodes message fields into a URPC message. Layout:
//
//	w0 kind | w1 op.ID | w2 origin | w3 base | w4 bytes
//	w5 opKind<<16 | newType<<8 | level | w6 aux
func wire(kind MsgKind, op Op, aux uint64) urpc.Message {
	return urpc.Message{
		uint64(kind),
		op.ID,
		uint64(op.Origin),
		uint64(op.Base),
		op.Bytes,
		uint64(op.Kind)<<16 | uint64(op.NewType)<<8 | uint64(op.Level),
		aux,
	}
}

// unwire decodes a URPC message.
func unwire(m urpc.Message) (kind MsgKind, op Op, aux uint64) {
	kind = MsgKind(m[0])
	op = Op{
		Kind:    OpKind(m[5] >> 16),
		ID:      m[1],
		Origin:  topo.CoreID(m[2]),
		Base:    memory.Addr(m[3]),
		Bytes:   m[4],
		NewType: caps.Type(m[5] >> 8),
		Level:   int(m[5] & 0xff),
	}
	return kind, op, m[6]
}

func (k MsgKind) String() string {
	switch k {
	case MsgShootdown:
		return "shootdown"
	case MsgShootdownFwd:
		return "shootdown-fwd"
	case MsgShootdownAck:
		return "shootdown-ack"
	case MsgPrepare:
		return "prepare"
	case MsgPrepareFwd:
		return "prepare-fwd"
	case MsgVote:
		return "vote"
	case MsgDecision:
		return "decision"
	case MsgDecisionFwd:
		return "decision-fwd"
	case MsgDecisionAck:
		return "decision-ack"
	case MsgCapSend:
		return "cap-send"
	case MsgCapAck:
		return "cap-ack"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	}
	return fmt.Sprintf("msg(%d)", uint64(k))
}
