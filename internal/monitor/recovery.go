package monitor

import (
	"sort"

	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/trace"
	"multikernel/internal/urpc"
)

// This file makes the agreement protocols survive fail-stop cores. The
// mechanism follows the paper's own recipe: the set of online cores is
// replicated OS state (§3.3), so failure handling is just another membership
// change disseminated over the existing one-phase protocol. Detection is by
// timeout — with Network.OpTimeout armed, every outstanding protocol phase
// and every pending aggregation carries a deadline; when one expires, the
// waiting monitor excises the non-responders from its replicated view,
// disseminates OpCoreDown for each of them (which recomputes multicast trees
// everywhere, since trees are derived from the view), re-plans the operation
// over the survivors, and re-runs the current phase. Re-sent phases are
// harmless: one-phase operations are idempotent by design (§5.1), 2PC
// prepares are lock-idempotent per operation ID, and responses are tracked
// per responder so duplicates never complete a phase early.

// maxRecoveries bounds recovery rounds per operation; each round doubles the
// phase deadline. An operation that cannot complete within the budget fails
// (aborts for 2PC) rather than retrying forever.
const maxRecoveries = 3

// EnableFaultTolerance arms deadline-based failure detection and recovery on
// every monitor. opTimeout is the aggregation deadline (how long an
// aggregation node waits for its children); initiators wait twice that per
// phase so that subtree recovery gets a chance to resolve first.
func (n *Network) EnableFaultTolerance(opTimeout sim.Time) { n.OpTimeout = opTimeout }

// FailStop fail-stops core c: its monitor process is killed at the current
// virtual time and never responds again. The rest of the system is NOT
// informed — surviving monitors learn of the death only through their own
// timeouts. Safe to call from an engine callback (fault.Injector's OnKill).
func (n *Network) FailStop(c topo.CoreID) {
	if n.failed[c] {
		return
	}
	n.failed[c] = true
	m := n.monitors[c]
	m.dead = true
	m.parked = false   // a dead monitor must never be woken or unparked
	if m.proc != nil { // nil under a parallel boot when c is a remote core
		n.Eng.Kill(m.proc)
	}
}

// CoreFailed reports the ground truth of whether core c was fail-stopped.
func (n *Network) CoreFailed(c topo.CoreID) bool { return n.failed[c] }

// Dead reports whether this monitor's core was fail-stopped.
func (m *Monitor) Dead() bool { return m.dead }

// opDeadline returns the deadline for an initiator phase started now, given
// how many recovery rounds the operation has already been through. Initiators
// wait twice the aggregation timeout per phase (subtree recovery resolves
// first), doubling per recovery round — exactly urpc.RetryPolicy's deadline
// schedule with Base = 2*OpTimeout.
func (m *Monitor) opDeadline(p *sim.Proc, recoveries int) sim.Time {
	if m.net.OpTimeout == 0 {
		return 0
	}
	rp := urpc.RetryPolicy{Base: 2 * m.net.OpTimeout}
	return rp.Deadline(p.Now(), recoveries)
}

// fwdDeadline returns the deadline for an aggregation started now (round 0 of
// the shared retry schedule: aggregators get one plain OpTimeout).
func (m *Monitor) fwdDeadline(p *sim.Proc) sim.Time {
	if m.net.OpTimeout == 0 {
		return 0
	}
	rp := urpc.RetryPolicy{Base: m.net.OpTimeout}
	return rp.Deadline(p.Now(), 0)
}

// sortedCores returns the set's members in ascending order, so recovery
// decisions never depend on map iteration order.
func sortedCores(set map[topo.CoreID]bool) []topo.CoreID {
	out := make([]topo.CoreID, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkDeadlines runs one failure-detector sweep, reporting whether any
// recovery ran (the caller must treat that as loop progress: recovery can
// self-push local requests, and a monitor that parked before popping them
// would never be woken). Expired aggregations are recovered before expired
// initiator phases (an aggregator answering upward may resolve the initiator
// without a full re-plan), and within each class operations recover in
// ascending ID order for determinism.
func (m *Monitor) checkDeadlines(p *sim.Proc) bool {
	now := p.Now()
	var fwIDs []uint64
	for id, fw := range m.fwd {
		if fw.deadline > 0 && now >= fw.deadline {
			fwIDs = append(fwIDs, id)
		}
	}
	sort.Slice(fwIDs, func(i, j int) bool { return fwIDs[i] < fwIDs[j] })
	for _, id := range fwIDs {
		if fw, ok := m.fwd[id]; ok {
			m.recoverFwd(p, id, fw)
		}
	}
	var opIDs []uint64
	for id, st := range m.ops {
		if st.deadline > 0 && now >= st.deadline {
			opIDs = append(opIDs, id)
		}
	}
	sort.Slice(opIDs, func(i, j int) bool { return opIDs[i] < opIDs[j] })
	for _, id := range opIDs {
		if st, ok := m.ops[id]; ok {
			m.recoverOp(p, id, st)
		}
	}
	return len(fwIDs)+len(opIDs) > 0
}

// excise removes each suspect from this monitor's replicated view, renders a
// ChannelDead verdict on its channel, and disseminates OpCoreDown so every
// surviving monitor's replica — and therefore every future multicast tree —
// drops the dead core. Dissemination reuses the ordinary one-phase membership
// path by self-submitting a local request; it runs as its own operation, with
// its own deadline, on the next loop iteration.
func (m *Monitor) excise(p *sim.Proc, suspects []topo.CoreID) {
	for _, s := range suspects {
		if !m.view[s] {
			continue
		}
		m.view[s] = false
		m.out[s].MarkDead()
		m.stats.Excised++
		m.net.Eng.Tracer().Emit(uint64(p.Now()), trace.Instant, trace.SubMonitor, int32(m.Core), "monitor.excise", 0, uint64(s))
		op := Op{Kind: OpCoreDown, ID: m.nextOpID(), Origin: m.Core, Bytes: uint64(s)}
		m.local.Push(&localReq{op: op, protocol: NUMAAware, fut: sim.NewFuture[bool](m.net.Eng)})
		for _, fn := range m.net.onExcise {
			fn(p, m.Core, s)
		}
	}
}

// recoverOp handles an expired initiator phase: excise the non-responders,
// re-plan over the survivors, and re-run the current phase with a doubled
// deadline. Operations out of recovery budget fail; single-target operations
// (ping, capability transfer) cannot be re-planned and fail immediately.
func (m *Monitor) recoverOp(p *sim.Proc, id uint64, st *opState) {
	m.stats.Recoveries++
	m.net.Eng.Tracer().Emit(uint64(p.Now()), trace.Instant, trace.SubMonitor, int32(m.Core), "monitor.recover_op", id, uint64(st.recoveries+1))
	m.excise(p, sortedCores(st.pending))
	st.recoveries++
	if st.recoveries > maxRecoveries {
		delete(m.ops, id)
		m.failOp(p, st)
		return
	}
	op := st.req.op
	if op.Kind == OpNone {
		delete(m.ops, id)
		m.opEnd(p, op, st.started, false)
		st.req.fut.Complete(false)
		return
	}
	plan := m.plan(st.req.protocol, st.req.targets)
	if len(plan) == 0 {
		// Every remaining participant is gone; the operation completes with
		// whatever the survivors (here: only the initiator) agreed on.
		delete(m.ops, id)
		m.completeEmptyPhase(p, st)
		return
	}
	st.plan = plan
	st.pending = planPending(plan)
	st.deadline = m.opDeadline(p, st.recoveries)
	switch {
	case st.phase == 2:
		for _, s := range plan {
			aux := s.mask
			if st.decision {
				aux |= auxCommit
			}
			m.send(p, s.to, wire(MsgDecision, op, aux))
		}
	case op.Kind == OpRetype || op.Kind == OpRevoke:
		for _, s := range plan {
			m.send(p, s.to, wire(MsgPrepare, op, s.mask))
		}
	default:
		for _, s := range plan {
			m.send(p, s.to, wire(MsgShootdown, op, s.mask))
		}
	}
}

// completeEmptyPhase finishes an operation whose re-planned participant set
// became empty mid-recovery.
func (m *Monitor) completeEmptyPhase(p *sim.Proc, st *opState) {
	switch st.req.op.Kind {
	case OpRetype, OpRevoke:
		if st.phase == 1 {
			st.decision = st.allYes
		}
		m.finish2PC(p, st)
	default:
		m.stats.Commits++
		m.opEnd(p, st.req.op, st.started, true)
		st.req.fut.Complete(true)
	}
}

// failOp gives up on an operation that exhausted its recovery budget.
func (m *Monitor) failOp(p *sim.Proc, st *opState) {
	if k := st.req.op.Kind; k == OpRetype || k == OpRevoke {
		st.decision = false
		m.finish2PC(p, st)
		return
	}
	m.stats.Aborts++
	m.opEnd(p, st.req.op, st.started, false)
	st.req.fut.Complete(false)
}

// recoverFwd handles an expired aggregation: the silent children are excised
// and the aggregate response goes upward with what the survivors said — a
// dead child has no TLB to flush and no locks worth honoring, so it neither
// blocks an ack nor turns a vote into an abort.
func (m *Monitor) recoverFwd(p *sim.Proc, id uint64, fw *fwdState) {
	m.stats.Recoveries++
	m.net.Eng.Tracer().Emit(uint64(p.Now()), trace.Instant, trace.SubMonitor, int32(m.Core), "monitor.recover_fwd", id, 0)
	m.excise(p, sortedCores(fw.pending))
	delete(m.fwd, id)
	m.fwdEnd(p, fw.op, fw.allYes)
	aux := uint64(1)
	if fw.ackKind == MsgVote {
		aux = 0
		if fw.allYes {
			aux = 1
		}
	}
	m.send(p, fw.parent, wire(fw.ackKind, fw.op, aux))
}
