package monitor

import (
	"testing"

	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// Regression sweep for recoverFwd, in the style of the transport's
// kill-mid-SendBatch sweeps: the fail-stop is swept across the entire
// forward fan-out of a NUMA-aware shootdown (one fresh engine per offset),
// so the death lands before the aggregator's fan-out, between its child
// sends, during a child's slowed invalidation, and after the aggregate
// response went upward. Whatever the interleaving, the operation must
// complete on the survivors, a mop-up operation must converge every
// surviving view, and nothing may deadlock.
//
// Victim 9 is a leaf of socket 2's aggregation subtree: its silence expires
// the aggregator's fwdDeadline and recoverFwd answers upward with what the
// survivors said. Victim 8 is socket 2's aggregation root itself: its
// silence expires the initiator's phase deadline instead (recoverOp), and
// the re-planned tree must re-reach the dead root's children.
func TestRecoverFwdKillSweptAcrossFanout(t *testing.T) {
	const (
		span = 140_000 // covers fan-out start through fwdDeadline expiry
		step = 7_000
	)
	for _, victim := range []topo.CoreID{9, 8} {
		sawFwdRecovery := false
		for off := sim.Time(0); off < span; off += step {
			f := newFaultFixture(t, topo.AMD8x4())
			// Slow invalidations hold the fan-out open so mid-flight offsets
			// actually land mid-flight.
			f.net.Hooks.Invalidate = func(p *sim.Proc, core topo.CoreID, op Op) {
				f.invalidated[core]++
				p.Sleep(20_000)
			}
			f.e.After(off, func() { f.net.FailStop(victim) })
			var first, mopup bool
			f.e.Spawn("app", func(p *sim.Proc) {
				first = f.net.Monitor(0).Unmap(p, 0x10000, 4096, nil, NUMAAware)
				// The mop-up op detects the death even when the kill landed
				// after the first op completed, so views always converge.
				mopup = f.net.Monitor(0).Unmap(p, 0x20000, 4096, nil, NUMAAware)
			})
			f.e.Run()
			if !first || !mopup {
				t.Fatalf("victim %d, kill at +%d: unmap=%v mop-up=%v, want both true",
					victim, off, first, mopup)
			}
			assertSurvivorViews(t, f)
			if dl := f.e.Deadlocked(); len(dl) != 0 {
				t.Fatalf("victim %d, kill at +%d: deadlocked procs: %v", victim, off, dl)
			}
			// recoverFwd runs on aggregators, never the initiator: any
			// recovery counted by a surviving non-initiator monitor is one.
			for c := 1; c < f.m.NumCores(); c++ {
				mon := f.net.Monitor(topo.CoreID(c))
				if !f.net.CoreFailed(mon.Core) && mon.Stats().Recoveries > 0 {
					sawFwdRecovery = true
				}
			}
		}
		if victim == 9 && !sawFwdRecovery {
			t.Errorf("leaf sweep never drove an aggregator through recoverFwd")
		}
	}
}
