package monitor

import (
	"testing"

	"multikernel/internal/cache"
	"multikernel/internal/caps"
	"multikernel/internal/interconnect"
	"multikernel/internal/kernel"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/skb"
	"multikernel/internal/topo"
)

type fixture struct {
	e    *sim.Engine
	m    *topo.Machine
	sys  *cache.System
	kern *kernel.System
	kb   *skb.KB
	net  *Network

	invalidated map[topo.CoreID]int
	prepared    map[topo.CoreID]int
	applied     map[topo.CoreID]int
	vetoCores   map[topo.CoreID]bool
}

func newFixture(t *testing.T, m *topo.Machine) *fixture {
	t.Helper()
	f := &fixture{
		e:           sim.NewEngine(1),
		m:           m,
		invalidated: make(map[topo.CoreID]int),
		prepared:    make(map[topo.CoreID]int),
		applied:     make(map[topo.CoreID]int),
		vetoCores:   make(map[topo.CoreID]bool),
	}
	f.sys = cache.New(f.e, m, memory.New(m), interconnect.New(m))
	f.kern = kernel.NewSystem(f.e, m)
	f.kb = skb.New(m)
	f.kb.Discover()
	f.kb.Measure(func(a, b topo.CoreID) sim.Time { return 2 * m.TransferLat(b, a) })
	f.net = NewNetwork(f.e, f.sys, f.kern, f.kb, Hooks{
		Invalidate: func(p *sim.Proc, core topo.CoreID, op Op) { f.invalidated[core]++ },
		Prepare: func(p *sim.Proc, core topo.CoreID, op Op) bool {
			f.prepared[core]++
			return !f.vetoCores[core]
		},
		Apply: func(p *sim.Proc, core topo.CoreID, op Op) { f.applied[core]++ },
	})
	t.Cleanup(f.e.Close)
	// Fault-free runs must never exercise the deadline machinery: no URPC
	// timeout or backed-off retry anywhere in the engine's registry.
	t.Cleanup(func() {
		snap := f.e.Metrics().Snapshot()
		if to, re := snap.Counters["urpc.timeouts"], snap.Counters["urpc.retries"]; to != 0 || re != 0 {
			t.Errorf("fault-free run: urpc.timeouts=%d urpc.retries=%d, want 0/0", to, re)
		}
	})
	return f
}

func TestUnmapReachesAllCoresEveryProtocol(t *testing.T) {
	for _, proto := range []Protocol{Unicast, Multicast, NUMAAware} {
		f := newFixture(t, topo.AMD4x4())
		ok := false
		f.e.Spawn("app", func(p *sim.Proc) {
			ok = f.net.Monitor(0).Unmap(p, 0x10000, 4096, nil, proto)
		})
		f.e.Run()
		if !ok {
			t.Fatalf("%v: unmap failed", proto)
		}
		for c := 0; c < 16; c++ {
			if f.invalidated[topo.CoreID(c)] != 1 {
				t.Fatalf("%v: core %d invalidated %d times, want 1", proto, c, f.invalidated[topo.CoreID(c)])
			}
		}
	}
}

func TestUnmapSubsetOnlyTouchesTargets(t *testing.T) {
	f := newFixture(t, topo.AMD8x4())
	targets := []topo.CoreID{0, 3, 8, 9, 31}
	f.e.Spawn("app", func(p *sim.Proc) {
		f.net.Monitor(0).Unmap(p, 0x10000, 4096, targets, NUMAAware)
	})
	f.e.Run()
	want := map[topo.CoreID]bool{0: true, 3: true, 8: true, 9: true, 31: true}
	for c := 0; c < 32; c++ {
		id := topo.CoreID(c)
		if want[id] && f.invalidated[id] != 1 {
			t.Errorf("target core %d invalidated %d times", c, f.invalidated[id])
		}
		if !want[id] && f.invalidated[id] != 0 {
			t.Errorf("non-target core %d invalidated", c)
		}
	}
}

func TestNUMAAwareBeatsUnicastAtScale(t *testing.T) {
	measure := func(proto Protocol) sim.Time {
		f := newFixture(t, topo.AMD8x4())
		var lat sim.Time
		f.e.Spawn("app", func(p *sim.Proc) {
			// Warm one operation, then measure.
			f.net.Monitor(0).Unmap(p, 0x10000, 4096, nil, proto)
			start := p.Now()
			f.net.Monitor(0).Unmap(p, 0x20000, 4096, nil, proto)
			lat = p.Now() - start
		})
		f.e.Run()
		return lat
	}
	uni, numa := measure(Unicast), measure(NUMAAware)
	if numa >= uni {
		t.Fatalf("NUMA-aware multicast (%d) not faster than unicast (%d) on 32 cores", numa, uni)
	}
}

func TestRetypeCommitsEverywhere(t *testing.T) {
	f := newFixture(t, topo.AMD4x4())
	ok := false
	f.e.Spawn("app", func(p *sim.Proc) {
		ok = f.net.Monitor(3).Retype(p, 0x40000, 8192, caps.Frame, 0, nil)
	})
	f.e.Run()
	if !ok {
		t.Fatal("retype aborted unexpectedly")
	}
	for c := 0; c < 16; c++ {
		id := topo.CoreID(c)
		if f.applied[id] != 1 {
			t.Fatalf("core %d applied %d times, want 1", c, f.applied[id])
		}
	}
	// Prepare ran on all remote cores (origin validates locally too).
	for c := 0; c < 16; c++ {
		if f.prepared[topo.CoreID(c)] != 1 {
			t.Fatalf("core %d prepared %d times", c, f.prepared[topo.CoreID(c)])
		}
	}
	// All locks drained.
	for c := 0; c < 16; c++ {
		if n := f.net.Monitor(topo.CoreID(c)).LockedRanges(); n != 0 {
			t.Fatalf("core %d still holds %d locks", c, n)
		}
	}
	if f.net.Monitor(3).Stats().Commits != 1 {
		t.Fatal("commit not counted")
	}
}

func TestRetypeAbortsOnVeto(t *testing.T) {
	f := newFixture(t, topo.AMD4x4())
	f.vetoCores[9] = true
	ok := true
	f.e.Spawn("app", func(p *sim.Proc) {
		ok = f.net.Monitor(0).Retype(p, 0x40000, 4096, caps.Frame, 0, nil)
	})
	f.e.Run()
	if ok {
		t.Fatal("retype committed despite veto")
	}
	for c := 0; c < 16; c++ {
		if f.applied[topo.CoreID(c)] != 0 {
			t.Fatalf("core %d applied an aborted op", c)
		}
		if n := f.net.Monitor(topo.CoreID(c)).LockedRanges(); n != 0 {
			t.Fatalf("core %d leaked %d locks after abort", c, n)
		}
	}
	if f.net.Monitor(0).Stats().Aborts != 1 {
		t.Fatal("abort not counted")
	}
}

func TestConcurrentConflictingRetypes(t *testing.T) {
	f := newFixture(t, topo.AMD4x4())
	results := make(map[topo.CoreID]bool)
	for _, core := range []topo.CoreID{0, 12} {
		core := core
		f.e.Spawn("app", func(p *sim.Proc) {
			// Overlapping ranges from different initiators.
			results[core] = f.net.Monitor(core).Retype(p, 0x80000, 8192, caps.Frame, 0, nil)
		})
	}
	f.e.Run()
	committed := 0
	for _, ok := range results {
		if ok {
			committed++
		}
	}
	if committed > 1 {
		t.Fatalf("%d conflicting retypes committed; range locks failed", committed)
	}
	for c := 0; c < 16; c++ {
		if n := f.net.Monitor(topo.CoreID(c)).LockedRanges(); n != 0 {
			t.Fatalf("core %d leaked %d locks", c, n)
		}
	}
}

func TestConcurrentDisjointRetypesBothCommit(t *testing.T) {
	f := newFixture(t, topo.AMD4x4())
	results := make(map[topo.CoreID]bool)
	ranges := map[topo.CoreID]memory.Addr{4: 0x100000, 8: 0x200000}
	for core, base := range ranges {
		core, base := core, base
		f.e.Spawn("app", func(p *sim.Proc) {
			results[core] = f.net.Monitor(core).Retype(p, base, 4096, caps.Frame, 0, nil)
		})
	}
	f.e.Run()
	if !results[4] || !results[8] {
		t.Fatalf("disjoint retypes interfered: %v", results)
	}
}

func TestPipelinedRetypesAllComplete(t *testing.T) {
	f := newFixture(t, topo.AMD4x4())
	const depth = 16
	done := 0
	f.e.Spawn("app", func(p *sim.Proc) {
		var futs []*sim.Future[bool]
		for i := 0; i < depth; i++ {
			base := memory.Addr(0x100000 + i*0x10000)
			futs = append(futs, f.net.Monitor(0).RetypeAsync(p, base, 4096, caps.Frame, 0, nil))
		}
		for _, fut := range futs {
			if fut.Await(p) {
				done++
			}
		}
	})
	f.e.Run()
	if done != depth {
		t.Fatalf("%d/%d pipelined retypes committed", done, depth)
	}
}

func TestSendCapDeliversToRemoteCSpace(t *testing.T) {
	f := newFixture(t, topo.AMD2x2())
	c := caps.Capability{Type: caps.Frame, Base: 0x5000, Bytes: 4096, Rights: caps.AllRights}
	ok := false
	f.e.Spawn("app", func(p *sim.Proc) {
		ok = f.net.Monitor(0).SendCap(p, 3, c)
	})
	f.e.Run()
	if !ok {
		t.Fatal("cap transfer refused")
	}
	got := f.net.Monitor(3).CS.All()
	if len(got) != 1 || got[0].Base != 0x5000 || got[0].Type != caps.Frame {
		t.Fatalf("remote cspace: %v", got)
	}
}

func TestSendCapRequiresGrant(t *testing.T) {
	f := newFixture(t, topo.AMD2x2())
	c := caps.Capability{Type: caps.Frame, Base: 0x5000, Bytes: 4096, Rights: caps.CanRead}
	ok := true
	f.e.Spawn("app", func(p *sim.Proc) {
		ok = f.net.Monitor(0).SendCap(p, 3, c)
	})
	f.e.Run()
	if ok {
		t.Fatal("grant-less cap transferred")
	}
	if len(f.net.Monitor(3).CS.All()) != 0 {
		t.Fatal("cap appeared in remote cspace")
	}
}

func TestPingLatencySane(t *testing.T) {
	f := newFixture(t, topo.AMD2x2())
	var rtt sim.Time
	f.e.Spawn("app", func(p *sim.Proc) {
		f.net.Monitor(0).Ping(p, 2) // warm
		rtt = f.net.Monitor(0).Ping(p, 2)
	})
	f.e.Run()
	// Two LRPCs + two URPC one-ways + dispatch: several thousand cycles, but
	// well under a blocking timeout path.
	if rtt < 2000 || rtt > 40_000 {
		t.Fatalf("ping rtt=%d cycles", rtt)
	}
}

func TestMonitorsBlockWhenIdleAndWake(t *testing.T) {
	f := newFixture(t, topo.AMD2x2())
	var late bool
	f.e.Spawn("app", func(p *sim.Proc) {
		p.Sleep(5_000_000) // long idle: all monitors should have parked
		late = true
		f.net.Monitor(0).Unmap(p, 0x1000, 4096, nil, NUMAAware)
	})
	f.e.Run()
	if !late {
		t.Fatal("test did not run")
	}
	// At least one remote monitor must have been woken from blocked state.
	total := uint64(0)
	for c := 0; c < 4; c++ {
		total += f.net.Monitor(topo.CoreID(c)).Stats().Wakeups
	}
	if total == 0 {
		t.Fatal("no monitor wakeups recorded after long idle")
	}
}
