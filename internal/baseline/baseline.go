// Package baseline models the comparator operating system of the paper's
// evaluation: a monolithic shared-memory kernel in the style of Linux 2.6 /
// Windows Server 2008. It implements the structures the multikernel is
// measured against — IPI-based TLB shootdown behind mprotect/VirtualProtect
// (Figure 7), futex-style in-kernel barriers (Figure 9), a spinlocked shared
// run queue, and an in-kernel loopback path with shared packet queues
// (Table 4).
//
// The baseline runs on exactly the same simulated hardware (cache coherence,
// interconnect, cost parameters) as the multikernel, so differences between
// the two are architectural, not artefacts of different machine models.
package baseline

import (
	"fmt"

	"multikernel/internal/cache"
	"multikernel/internal/kernel"
	"multikernel/internal/memory"
	"multikernel/internal/metrics"
	"multikernel/internal/sim"
	"multikernel/internal/stats"
	"multikernel/internal/topo"
	"multikernel/internal/trace"
)

// Flavor selects the comparator kernel's tuning constants.
type Flavor int

// Comparator flavors.
const (
	Linux Flavor = iota
	Windows
)

func (f Flavor) String() string {
	if f == Windows {
		return "Windows"
	}
	return "Linux"
}

// Per-flavor software costs, in cycles.
type flavorCosts struct {
	ipiPath   sim.Time // per-target kernel work to send one shootdown IPI
	unmapPrep sim.Time // syscall-side page-table and VMA bookkeeping
	wake      sim.Time // waking one blocked task (futex/dispatcher wake)
}

func costsFor(f Flavor) flavorCosts {
	switch f {
	case Windows:
		// The Windows dispatcher sends shootdown IPIs with slightly less
		// per-CPU work than Linux's flush path in this era.
		return flavorCosts{ipiPath: 420, unmapPrep: 900, wake: 450}
	default:
		return flavorCosts{ipiPath: 560, unmapPrep: 700, wake: 500}
	}
}

// Kernel is one booted monolithic kernel instance spanning all cores.
type Kernel struct {
	Flavor Flavor
	sys    *cache.System
	kern   *kernel.System
	eng    *sim.Engine
	fc     flavorCosts

	// Shootdown state shared between cores, as in a real kernel.
	shootOp  memory.Addr // operation descriptor (range, generation)
	shootAck memory.Addr // acknowledgement counter
	ipiProcs []*sim.Proc
	pending  []bool
}

// New boots the baseline kernel on the machine: one always-resident kernel
// context per core that services shootdown IPIs.
func New(e *sim.Engine, sys *cache.System, kern *kernel.System, flavor Flavor) *Kernel {
	mem := sys.Memory()
	k := &Kernel{
		Flavor:   flavor,
		sys:      sys,
		kern:     kern,
		eng:      e,
		fc:       costsFor(flavor),
		shootOp:  mem.AllocLines(1, 0).Base,
		shootAck: mem.AllocLines(1, 0).Base,
		pending:  make([]bool, sys.Machine().NumCores()),
	}
	for c := 0; c < sys.Machine().NumCores(); c++ {
		core := topo.CoreID(c)
		p := e.Spawn(fmt.Sprintf("%v-ipi%d", flavor, c), func(p *sim.Proc) {
			p.SetDaemon(true)
			k.ipiLoop(p, core)
		})
		k.ipiProcs = append(k.ipiProcs, p)
		kern.Core(core).OnIPI(func(from topo.CoreID, vector int) {
			k.pending[core] = true
			e.Wake(k.ipiProcs[core])
		})
	}
	return k
}

// ipiLoop is the per-core interrupt context: on each shootdown IPI it takes
// the trap, reads the shared operation descriptor, invalidates its TLB and
// acknowledges on the shared counter.
func (k *Kernel) ipiLoop(p *sim.Proc, core topo.CoreID) {
	mc := &k.sys.Machine().Costs
	for {
		if !k.pending[core] {
			p.Park()
			continue
		}
		k.pending[core] = false
		k.kern.Core(core).Trap(p)
		k.sys.Load(p, core, k.shootOp) // read what to invalidate
		p.Sleep(mc.TLBInval)
		k.sys.RMW(p, core, k.shootAck, func(v uint64) uint64 { return v + 1 })
	}
}

// Unmap performs the monolithic kernel's mprotect/munmap path from the
// initiating core: enter the kernel, update the page tables, serially send a
// shootdown IPI to every other target core, and spin until all have
// acknowledged (the Figure 7 comparator).
func (k *Kernel) Unmap(p *sim.Proc, initiator topo.CoreID, targets []topo.CoreID) {
	mc := &k.sys.Machine().Costs
	k.kern.Core(initiator).Syscall(p)
	p.Sleep(k.fc.unmapPrep)
	// Publish the operation and reset the ack counter.
	k.sys.Store(p, initiator, k.shootAck, 0)
	k.sys.Store(p, initiator, k.shootOp, uint64(p.Now()))
	need := uint64(0)
	for _, t := range targets {
		if t == initiator {
			continue
		}
		p.Sleep(k.fc.ipiPath)
		k.kern.Core(initiator).SendIPI(p, t, 1)
		need++
	}
	// Local invalidation while the others take their traps.
	p.Sleep(mc.TLBInval)
	for k.sys.Load(p, initiator, k.shootAck) < need {
		p.Sleep(60)
	}
	k.kern.Core(initiator).Syscall(p) // return to user space
}

// Barrier is the in-kernel (futex-style) barrier used by the baseline's
// OpenMP runtime: arrival is a shared atomic, and blocking/waking goes
// through the kernel (Figure 9's comparator behaviour).
type Barrier struct {
	k       *Kernel
	n       int
	count   memory.Addr
	gen     uint64
	waiters []*sim.Proc
}

// NewBarrier allocates a kernel barrier for n participants.
func (k *Kernel) NewBarrier(n int, home topo.SocketID) *Barrier {
	return &Barrier{k: k, n: n, count: k.sys.Memory().AllocLines(1, home).Base}
}

// Wait blocks the calling proc (running on core) until all n participants
// arrive. The last arrival enters the kernel and wakes every waiter
// serially, as futex-based barriers do.
func (b *Barrier) Wait(p *sim.Proc, core topo.CoreID) {
	mc := &b.k.sys.Machine().Costs
	arrived := b.k.sys.RMW(p, core, b.count, func(v uint64) uint64 { return v + 1 })
	if arrived == uint64(b.n) {
		b.k.sys.Store(p, core, b.count, 0)
		b.k.kern.Core(core).Syscall(p) // futex(WAKE)
		// Detach the waiter list before the (slow, serial) wake loop: an
		// already-woken thread may re-register for the next round while we
		// are still waking the rest.
		ws := b.waiters
		b.waiters = nil
		b.gen++
		for _, w := range ws {
			p.Sleep(b.k.fc.wake)
			p.Unpark(w)
		}
		return
	}
	// futex(WAIT): register, then syscall, block, and context-switch back in
	// when woken. Registration happens before any further virtual time passes
	// so a fast last-arriver cannot miss this waiter.
	b.waiters = append(b.waiters, p)
	b.k.kern.Core(core).Syscall(p)
	b.k.kern.Core(core).ContextSwitch(p)
	p.Park()
	p.Sleep(mc.CSwitch)
}

// RunQueue is the baseline's spinlocked shared run queue (the structure the
// paper's Figure 4 places at the left of the sharing spectrum). It exists
// for the scheduler-contention ablation benchmarks.
type RunQueue struct {
	k     *Kernel
	lock  memory.Addr
	meta  memory.Addr // head/tail/len metadata line
	tasks []int

	mAcquires *metrics.Counter
	mWait     *stats.Histogram
}

// NewRunQueue allocates a shared run queue homed on the given socket.
func (k *Kernel) NewRunQueue(home topo.SocketID) *RunQueue {
	mem := k.sys.Memory()
	reg := k.eng.Metrics()
	return &RunQueue{
		k:         k,
		lock:      mem.AllocLines(1, home).Base,
		meta:      mem.AllocLines(1, home).Base,
		mAcquires: reg.Counter("baseline.lock_acquires"),
		mWait:     reg.Histogram("baseline.lock_wait_cycles"),
	}
}

func (q *RunQueue) withLock(p *sim.Proc, core topo.CoreID, fn func()) {
	t0 := p.Now()
	contended := false
	for {
		acquired := false
		q.k.sys.RMW(p, core, q.lock, func(v uint64) uint64 {
			if v == 0 {
				acquired = true
				return 1
			}
			return v
		})
		if acquired {
			break
		}
		contended = true
		for q.k.sys.Load(p, core, q.lock) != 0 {
			p.Sleep(30)
		}
	}
	rec := q.k.eng.Tracer()
	q.mAcquires.Inc()
	q.mWait.Observe(uint64(p.Now() - t0))
	if contended {
		// Retroactive span: only contended acquisitions become lock.wait
		// slices, so the uncontended fast path stays invisible in traces.
		rec.Emit(uint64(t0), trace.Begin, trace.SubBaseline, int32(core), "lock.wait", 0, 0)
		rec.Emit(uint64(p.Now()), trace.End, trace.SubBaseline, int32(core), "lock.wait", 0, 0)
	}
	rec.Emit(uint64(p.Now()), trace.Begin, trace.SubBaseline, int32(core), "lock.hold", 0, 0)
	fn()
	q.k.sys.Store(p, core, q.lock, 0)
	rec.Emit(uint64(p.Now()), trace.End, trace.SubBaseline, int32(core), "lock.hold", 0, 0)
}

// Enqueue adds a task under the queue lock.
func (q *RunQueue) Enqueue(p *sim.Proc, core topo.CoreID, task int) {
	q.withLock(p, core, func() {
		q.k.sys.Store(p, core, q.meta, uint64(len(q.tasks)))
		q.tasks = append(q.tasks, task)
	})
}

// Dequeue removes the oldest task under the queue lock.
func (q *RunQueue) Dequeue(p *sim.Proc, core topo.CoreID) (int, bool) {
	var task int
	var ok bool
	q.withLock(p, core, func() {
		q.k.sys.Load(p, core, q.meta)
		if len(q.tasks) > 0 {
			task, ok = q.tasks[0], true
			q.tasks = q.tasks[1:]
			q.k.sys.Store(p, core, q.meta, uint64(len(q.tasks)))
		}
	})
	return task, ok
}

// Len returns the queue length (engine-side, uncharged).
func (q *RunQueue) Len() int { return len(q.tasks) }
