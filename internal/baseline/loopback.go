package baseline

import (
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// Loopback is the monolithic kernel's localhost packet path: a spinlocked
// in-kernel queue of packet buffers shared between sender and receiver cores
// (Table 4's comparator). Every packet crosses the kernel boundary twice and
// its payload plus the queue metadata migrate between the cores' caches.
type Loopback struct {
	k        *Kernel
	lock     memory.Addr
	meta     memory.Addr // head/tail indices
	descs    memory.Region
	bufs     memory.Region
	kmeta    memory.Region // skb slab/socket accounting lines, shared
	slots    int
	bufLines int

	head, tail uint64
	sizes      []int
	blocked    *sim.Proc
}

// Per-packet in-kernel path costs (cycles): softirq dispatch, netif_rx,
// protocol demux, socket queue management — work beyond the cache misses.
const (
	lbRxPathCost = 2500
	lbTxPathCost = 2000
)

// kmetaLines is the number of shared kernel accounting lines (skb slab
// freelists, socket counters, memory accounting) each packet touches on each
// side; they ping-pong between sender and receiver like the paper's
// high miss counts indicate.
const kmetaLines = 6

// loopbackSlots is the kernel queue depth.
const loopbackSlots = 32

// NewLoopback creates the kernel loopback queue sized for packets up to
// maxBytes, with all structures homed on the given socket (a real kernel
// allocates skbs wherever the allocator happens to place them; we use the
// sender's socket).
func (k *Kernel) NewLoopback(maxBytes int, home topo.SocketID) *Loopback {
	mem := k.sys.Memory()
	bufLines := (maxBytes + memory.LineSize - 1) / memory.LineSize
	return &Loopback{
		k:        k,
		lock:     mem.AllocLines(1, home).Base,
		meta:     mem.AllocLines(1, home).Base,
		descs:    mem.AllocLines(loopbackSlots, home),
		bufs:     mem.AllocLines(loopbackSlots*bufLines, home),
		kmeta:    mem.AllocLines(kmetaLines, home),
		slots:    loopbackSlots,
		bufLines: bufLines,
		sizes:    make([]int, loopbackSlots),
	}
}

func (lb *Loopback) withLock(p *sim.Proc, core topo.CoreID, fn func()) {
	for {
		acquired := false
		lb.k.sys.RMW(p, core, lb.lock, func(v uint64) uint64 {
			if v == 0 {
				acquired = true
				return 1
			}
			return v
		})
		if acquired {
			break
		}
		for lb.k.sys.Load(p, core, lb.lock) != 0 {
			p.Sleep(30)
		}
	}
	fn()
	lb.k.sys.Store(p, core, lb.lock, 0)
}

func (lb *Loopback) buf(slot uint64) memory.Addr {
	return lb.bufs.LineAt(int(slot%uint64(lb.slots)) * lb.bufLines)
}

// Send enqueues a packet from core, blocking (spinning in the kernel) while
// the queue is full. It charges the syscall, the payload copy into the
// kernel buffer and the locked queue manipulation.
func (lb *Loopback) Send(p *sim.Proc, core topo.CoreID, payload []byte) {
	sys := lb.k.sys
	lb.k.kern.Core(core).Syscall(p)
	for lb.tail-lb.head >= uint64(lb.slots) {
		p.Sleep(200)
	}
	p.Sleep(lbTxPathCost)
	slot := lb.tail
	base := lb.buf(slot)
	// skb allocation: slab freelist and socket accounting, shared lines that
	// ping-pong with the receiver's frees.
	for i := 0; i < kmetaLines/2; i++ {
		sys.RMW(p, core, lb.kmeta.LineAt(i), func(v uint64) uint64 { return v + 1 })
	}
	// Copy the payload into the kernel buffer line by line through the
	// coherent cache.
	var zero [memory.WordsPerLine]uint64
	for i := 0; i*memory.LineSize < len(payload); i++ {
		sys.StoreLine(p, core, base+memory.Addr(i*memory.LineSize), zero)
	}
	sys.Memory().StoreBytes(base, payload)
	lb.sizes[slot%uint64(lb.slots)] = len(payload)
	lb.withLock(p, core, func() {
		sys.Store(p, core, lb.descs.LineAt(int(slot%uint64(lb.slots))), slot+1)
		lb.tail++
		sys.Store(p, core, lb.meta, lb.tail)
	})
	if lb.blocked != nil {
		w := lb.blocked
		lb.blocked = nil
		p.Sleep(lb.k.fc.wake)
		p.Unpark(w)
	}
}

// Recv dequeues the next packet from core, blocking in the kernel when the
// queue is empty. It charges the syscall, the locked dequeue and the payload
// copy out of the kernel buffer.
func (lb *Loopback) Recv(p *sim.Proc, core topo.CoreID) []byte {
	sys := lb.k.sys
	lb.k.kern.Core(core).Syscall(p)
	for lb.head >= lb.tail {
		if lb.blocked != nil {
			panic("baseline: loopback supports one blocked receiver")
		}
		lb.blocked = p
		p.Park()
		lb.blocked = nil
		p.Sleep(sys.Machine().Costs.CSwitch)
	}
	p.Sleep(lbRxPathCost)
	var slot uint64
	lb.withLock(p, core, func() {
		sys.Load(p, core, lb.meta)
		slot = lb.head
		sys.Load(p, core, lb.descs.LineAt(int(slot%uint64(lb.slots))))
	})
	size := lb.sizes[slot%uint64(lb.slots)]
	base := lb.buf(slot)
	out := sys.Memory().LoadBytes(base, size)
	for i := 0; i*memory.LineSize < size; i++ {
		sys.LoadLine(p, core, base+memory.Addr(i*memory.LineSize))
	}
	// skb free: the receiver returns the buffer to the shared slab, taking
	// ownership of its lines and the freelist accounting — the source of the
	// heavy sink-to-source coherence traffic the paper measures. The slot is
	// only republished (head advance) after the free completes, so the
	// sender cannot overwrite a buffer that is still being recycled.
	var zero [memory.WordsPerLine]uint64
	for i := 0; i*memory.LineSize < size; i++ {
		sys.StoreLine(p, core, base+memory.Addr(i*memory.LineSize), zero)
	}
	for i := kmetaLines / 2; i < kmetaLines; i++ {
		sys.RMW(p, core, lb.kmeta.LineAt(i), func(v uint64) uint64 { return v + 1 })
	}
	lb.withLock(p, core, func() {
		lb.head++
		sys.Store(p, core, lb.meta, lb.head)
	})
	return out
}
