package baseline

import (
	"bytes"
	"testing"

	"multikernel/internal/cache"
	"multikernel/internal/interconnect"
	"multikernel/internal/kernel"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

type rig struct {
	e    *sim.Engine
	m    *topo.Machine
	sys  *cache.System
	kern *kernel.System
}

func newRig(m *topo.Machine) *rig {
	e := sim.NewEngine(1)
	sys := cache.New(e, m, memory.New(m), interconnect.New(m))
	return &rig{e: e, m: m, sys: sys, kern: kernel.NewSystem(e, m)}
}

func allCores(m *topo.Machine) []topo.CoreID {
	out := make([]topo.CoreID, m.NumCores())
	for i := range out {
		out[i] = topo.CoreID(i)
	}
	return out
}

func TestUnmapCompletesAndScalesLinearly(t *testing.T) {
	measure := func(n int) sim.Time {
		r := newRig(topo.AMD8x4())
		defer r.e.Close()
		k := New(r.e, r.sys, r.kern, Linux)
		var lat sim.Time
		r.e.Spawn("app", func(p *sim.Proc) {
			targets := allCores(r.m)[:n]
			k.Unmap(p, 0, targets) // warm
			start := p.Now()
			k.Unmap(p, 0, targets)
			lat = p.Now() - start
		})
		r.e.Run()
		return lat
	}
	l2, l16, l32 := measure(2), measure(16), measure(32)
	t.Logf("linux unmap: 2=%d 16=%d 32=%d", l2, l16, l32)
	if !(l2 < l16 && l16 < l32) {
		t.Fatalf("not monotone: %d %d %d", l2, l16, l32)
	}
	// Roughly linear: 32-core cost should be at least 5x the 2-core cost.
	if l32 < 5*l2 {
		t.Fatalf("unexpectedly flat scaling: %d vs %d", l2, l32)
	}
}

func TestAllShotCoresInvalidate(t *testing.T) {
	r := newRig(topo.AMD4x4())
	defer r.e.Close()
	k := New(r.e, r.sys, r.kern, Linux)
	r.e.Spawn("app", func(p *sim.Proc) {
		k.Unmap(p, 0, allCores(r.m))
	})
	r.e.Run()
	// Every non-initiating core must have trapped exactly once.
	for c := 1; c < 16; c++ {
		if got := r.kern.Core(topo.CoreID(c)).Stats().Traps; got != 1 {
			t.Fatalf("core %d trapped %d times", c, got)
		}
	}
}

func TestWindowsCheaperPerIPIPath(t *testing.T) {
	measure := func(f Flavor) sim.Time {
		r := newRig(topo.AMD8x4())
		defer r.e.Close()
		k := New(r.e, r.sys, r.kern, f)
		var lat sim.Time
		r.e.Spawn("app", func(p *sim.Proc) {
			k.Unmap(p, 0, allCores(r.m))
			start := p.Now()
			k.Unmap(p, 0, allCores(r.m))
			lat = p.Now() - start
		})
		r.e.Run()
		return lat
	}
	if lw, ww := measure(Linux), measure(Windows); ww >= lw {
		t.Fatalf("windows (%d) not cheaper than linux (%d) at 32 cores", ww, lw)
	}
}

func TestKernelBarrier(t *testing.T) {
	r := newRig(topo.AMD4x4())
	defer r.e.Close()
	k := New(r.e, r.sys, r.kern, Linux)
	const n = 8
	b := k.NewBarrier(n, 0)
	reached := 0
	passed := 0
	for i := 0; i < n; i++ {
		i := i
		r.e.Spawn("w", func(p *sim.Proc) {
			p.Sleep(sim.Time(i * 500)) // staggered arrivals
			reached++
			b.Wait(p, topo.CoreID(i))
			if reached != n {
				t.Errorf("thread %d passed barrier with only %d arrived", i, reached)
			}
			passed++
		})
	}
	r.e.Run()
	if passed != n {
		t.Fatalf("%d passed, want %d", passed, n)
	}
}

func TestKernelBarrierReusable(t *testing.T) {
	r := newRig(topo.AMD2x2())
	defer r.e.Close()
	k := New(r.e, r.sys, r.kern, Linux)
	b := k.NewBarrier(4, 0)
	rounds := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		r.e.Spawn("w", func(p *sim.Proc) {
			for round := 0; round < 3; round++ {
				p.Sleep(sim.Time(100 * (i + 1)))
				b.Wait(p, topo.CoreID(i))
				rounds[i]++
			}
		})
	}
	r.e.Run()
	for i, n := range rounds {
		if n != 3 {
			t.Fatalf("thread %d completed %d rounds", i, n)
		}
	}
}

func TestRunQueueFIFOUnderContention(t *testing.T) {
	r := newRig(topo.AMD4x4())
	defer r.e.Close()
	k := New(r.e, r.sys, r.kern, Linux)
	q := k.NewRunQueue(0)
	var got []int
	r.e.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			q.Enqueue(p, 0, i)
		}
	})
	r.e.Spawn("consumer", func(p *sim.Proc) {
		for len(got) < 20 {
			if v, ok := q.Dequeue(p, 8); ok {
				got = append(got, v)
			} else {
				p.Sleep(100)
			}
		}
	})
	r.e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("dequeue order broken at %d: %v", i, got[:i+1])
		}
	}
}

func TestLoopbackDeliversPayload(t *testing.T) {
	r := newRig(topo.AMD2x2())
	defer r.e.Close()
	k := New(r.e, r.sys, r.kern, Linux)
	lb := k.NewLoopback(1500, 0)
	payload := bytes.Repeat([]byte{0xab, 0xcd}, 500) // 1000 bytes
	var got []byte
	r.e.Spawn("sink", func(p *sim.Proc) {
		got = lb.Recv(p, 2)
	})
	r.e.Spawn("source", func(p *sim.Proc) {
		p.Sleep(1000)
		lb.Send(p, 0, payload)
	})
	r.e.Run()
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted: %d bytes", len(got))
	}
}

func TestLoopbackManyPacketsInOrder(t *testing.T) {
	r := newRig(topo.AMD2x2())
	defer r.e.Close()
	k := New(r.e, r.sys, r.kern, Linux)
	lb := k.NewLoopback(256, 0)
	const n = 100
	var seq []byte
	r.e.Spawn("sink", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			pkt := lb.Recv(p, 2)
			seq = append(seq, pkt[0])
		}
	})
	r.e.Spawn("source", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			lb.Send(p, 0, []byte{byte(i), 1, 2, 3})
		}
	})
	r.e.Run()
	if len(seq) != n {
		t.Fatalf("received %d", len(seq))
	}
	for i, b := range seq {
		if b != byte(i) {
			t.Fatalf("packet %d out of order", i)
		}
	}
}

func TestLoopbackGeneratesSharedMemoryTraffic(t *testing.T) {
	r := newRig(topo.AMD2x2())
	defer r.e.Close()
	k := New(r.e, r.sys, r.kern, Linux)
	lb := k.NewLoopback(1500, 0)
	payload := bytes.Repeat([]byte{1}, 1000)
	r.e.Spawn("sink", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			lb.Recv(p, 2) // other socket
		}
	})
	r.e.Spawn("source", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			lb.Send(p, 0, payload)
		}
	})
	r.e.Run()
	// Payload and queue metadata must have crossed the interconnect in both
	// directions (lock/ack lines ping-pong).
	if fwd := r.sys.Fabric().PathDwords(0, 1); fwd == 0 {
		t.Fatal("no forward interconnect traffic")
	}
	if rev := r.sys.Fabric().PathDwords(1, 0); rev == 0 {
		t.Fatal("no reverse interconnect traffic (locks should ping-pong)")
	}
}
