// Package harness runs independent experiment points in parallel while
// preserving deterministic output.
//
// Every experiment sweep in this repository is a list of hermetic points: a
// (machine, core count, protocol, workload) combination that builds its own
// sim.Engine with a fixed seed, runs to completion, and reduces to a few
// numbers. Because each point's engine is seed-deterministic and shares no
// mutable state with any other point (machine topologies are immutable after
// construction), points may execute on any OS thread in any order — the
// gem5-style hermeticity argument for parallel experiment fan-out. The
// harness exploits that: points are fanned out across a bounded worker pool,
// and results are written into an index-ordered slice, so rendered tables
// and figures are byte-identical to a serial run.
//
// Parallelism defaults to GOMAXPROCS and can be overridden globally
// (mkbench -parallel N) or forced to 1 for fully serial execution.
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelism is the worker-pool width; <= 1 means run serially.
var parallelism atomic.Int64

func init() { parallelism.Store(int64(runtime.GOMAXPROCS(0))) }

// SetParallelism sets the number of experiment points run concurrently.
// Values below 1 are clamped to 1 (serial). It affects subsequent Map calls
// globally; it is not intended to be raced with running sweeps.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parallelism.Store(int64(n))
}

// Parallelism returns the current worker-pool width.
func Parallelism() int { return int(parallelism.Load()) }

// runWorkers is the per-run worker budget: how many host goroutines a single
// experiment point's parallel simulation engine (sim.ParallelEngine) may use
// for intra-run partition execution. It is a second, orthogonal axis to
// Parallelism: the harness fans points out, the engine fans partitions out
// within a point. Defaults to 1 (serial reference engine) because sweeps are
// usually point-rich — cross-point fan-out has no synchronization cost at
// all, while intra-run parallelism pays an epoch barrier per lookahead
// window, so it only wins on few-point runs with large per-point event
// counts.
var runWorkers atomic.Int64

func init() { runWorkers.Store(1) }

// SetRunWorkers sets the per-run engine worker budget. Values below 1 clamp
// to 1. The product Parallelism() × RunWorkers() is the peak host-goroutine
// demand, so callers raising one axis should lower the other.
func SetRunWorkers(n int) {
	if n < 1 {
		n = 1
	}
	runWorkers.Store(int64(n))
}

// RunWorkers returns the per-run engine worker budget.
func RunWorkers() int { return int(runWorkers.Load()) }

// Map runs fn(i) for every i in [0, n) and returns the results in index
// order. With parallelism 1 (or n == 1) everything runs on the calling
// goroutine; otherwise points are distributed over a worker pool. fn must be
// hermetic: it may read shared immutable data (machine topologies) but must
// not touch state shared with other points. A panic in any point is
// re-panicked on the calling goroutine after all workers have drained.
func Map[T any](n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value // first panic observed, re-raised by the caller
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, fmt.Sprintf("harness: point %d panicked: %v", i, r))
						}
					}()
					out[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r)
	}
	return out
}

// Map2 runs fn over the cross product [0, rows) × [0, cols), returning
// results indexed [row][col]. All rows*cols points share one worker pool, so
// load balances across the full grid rather than row by row.
func Map2[T any](rows, cols int, fn func(r, c int) T) [][]T {
	flat := Map(rows*cols, func(i int) T { return fn(i/cols, i%cols) })
	out := make([][]T, rows)
	for r := range out {
		out[r] = flat[r*cols : (r+1)*cols]
	}
	return out
}
