package harness

import (
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"multikernel/internal/sim"
)

func withParallelism(t *testing.T, n int) {
	t.Helper()
	old := Parallelism()
	SetParallelism(n)
	t.Cleanup(func() { SetParallelism(old) })
}

func TestMapCollectsInIndexOrder(t *testing.T) {
	for _, par := range []int{1, 2, 8, 64} {
		withParallelism(t, par)
		got := Map(100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallelism %d: out[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestMapSerialAndParallelIdentical(t *testing.T) {
	// Each point runs its own seed-deterministic engine; the collected
	// results must not depend on the worker-pool width.
	point := func(i int) []sim.Time {
		e := sim.NewEngine(uint64(i) + 1)
		var log []sim.Time
		for p := 0; p < 4; p++ {
			e.Spawn("p", func(p *sim.Proc) {
				for j := 0; j < 50; j++ {
					p.Sleep(e.RNG().Time(100) + 1)
					log = append(log, p.Now())
				}
			})
		}
		e.Run()
		return log
	}
	withParallelism(t, 1)
	serial := Map(16, point)
	withParallelism(t, 8)
	parallel := Map(16, point)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel run diverged from serial run")
	}
}

func TestMapRunsAllPointsConcurrencyBounded(t *testing.T) {
	withParallelism(t, 3)
	var live, peak, calls atomic.Int64
	Map(64, func(i int) struct{} {
		n := live.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		calls.Add(1)
		live.Add(-1)
		return struct{}{}
	})
	if calls.Load() != 64 {
		t.Fatalf("ran %d points, want 64", calls.Load())
	}
	if peak.Load() > 3 {
		t.Fatalf("observed %d concurrent points, want <= 3", peak.Load())
	}
}

func TestMapPropagatesPanic(t *testing.T) {
	withParallelism(t, 4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic %v does not carry the cause", r)
		}
	}()
	Map(16, func(i int) int {
		if i == 7 {
			panic("boom")
		}
		return i
	})
}

func TestMapZeroAndOnePoints(t *testing.T) {
	withParallelism(t, 8)
	if got := Map(0, func(i int) int { return i }); got != nil {
		t.Fatal("Map(0) should be nil")
	}
	if got := Map(1, func(i int) int { return 41 + i }); len(got) != 1 || got[0] != 41 {
		t.Fatalf("Map(1) = %v", got)
	}
}

func TestMap2Shape(t *testing.T) {
	withParallelism(t, 4)
	got := Map2(3, 5, func(r, c int) int { return r*10 + c })
	if len(got) != 3 {
		t.Fatalf("rows = %d", len(got))
	}
	for r := range got {
		for c := range got[r] {
			if got[r][c] != r*10+c {
				t.Fatalf("got[%d][%d] = %d", r, c, got[r][c])
			}
		}
	}
}

func TestSetParallelismClamps(t *testing.T) {
	withParallelism(t, 4)
	SetParallelism(-3)
	if Parallelism() != 1 {
		t.Fatalf("parallelism = %d, want 1", Parallelism())
	}
}
