package urpc

import (
	"bytes"
	"testing"

	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// TestBulkRoundTrip: payloads of every size class — sub-line, exact-line,
// ragged multi-line, full slot — survive the channel bit-exactly and in order.
func TestBulkRoundTrip(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	b := NewBulk(sys, 0, 2, BulkOptions{Slots: 4, SlotLines: 8, Home: -1})
	sizes := []int{1, 63, 64, 65, 200, 8 * memory.LineSize}
	payloads := make([][]byte, len(sizes))
	for i, sz := range sizes {
		payloads[i] = make([]byte, sz)
		for j := range payloads[i] {
			payloads[i][j] = byte(i*31 + j)
		}
	}
	var got [][]byte
	e.Spawn("recv", func(p *sim.Proc) {
		for len(got) < len(payloads) {
			got = append(got, b.Recv(p))
		}
	})
	e.Spawn("send", func(p *sim.Proc) {
		for _, pl := range payloads {
			b.Send(p, pl)
		}
	})
	e.Run()
	e.CheckQuiesced()
	for i, want := range payloads {
		if !bytes.Equal(got[i], want) {
			t.Fatalf("payload %d corrupted: %d bytes in, %d bytes out", i, len(want), len(got[i]))
		}
	}
	if st := b.Stats(); st.Sent != uint64(len(payloads)) || st.Received != uint64(len(payloads)) {
		t.Fatalf("descriptor stats %+v", st)
	}
	assertFaultFree(t, e)
}

// TestBulkBackpressureGatesSlotReuse: the pool has one payload slot per
// descriptor slot, so a sender racing ahead of a slow receiver must stall on
// the descriptor ring before overwriting an unconsumed slot — and every
// payload must still arrive intact.
func TestBulkBackpressureGatesSlotReuse(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	b := NewBulk(sys, 0, 2, BulkOptions{Slots: 2, SlotLines: 2, Home: -1})
	const n = 8
	var got [][]byte
	e.Spawn("recv", func(p *sim.Proc) {
		p.Sleep(100_000) // let the sender hit the full descriptor ring
		for len(got) < n {
			pl, ok := b.TryRecv(p)
			if !ok {
				p.Sleep(pollGap)
				continue
			}
			got = append(got, pl)
		}
	})
	e.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			pl := bytes.Repeat([]byte{byte(i + 1)}, 100)
			b.Send(p, pl)
		}
	})
	e.Run()
	e.CheckQuiesced()
	if b.Stats().FullStall == 0 {
		t.Fatal("sender never stalled on a 2-slot pool with a slow receiver")
	}
	for i, pl := range got {
		want := bytes.Repeat([]byte{byte(i + 1)}, 100)
		if !bytes.Equal(pl, want) {
			t.Fatalf("payload %d overwritten before consumption: got leading byte %d, want %d",
				i, pl[0], want[0])
		}
	}
	assertFaultFree(t, e)
}

// TestBulkOversizedPayloadPanics: a payload larger than one pool slot is a
// programming error, not a runtime condition.
func TestBulkOversizedPayloadPanics(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	b := NewBulk(sys, 0, 2, BulkOptions{Slots: 2, SlotLines: 1, Home: -1})
	var panicked bool
	e.Spawn("send", func(p *sim.Proc) {
		defer func() { panicked = recover() != nil }()
		b.Send(p, make([]byte, memory.LineSize+1))
	})
	e.Run()
	if !panicked {
		t.Fatal("expected panic")
	}
}

// TestBulkAccessors covers the inspection surface.
func TestBulkAccessors(t *testing.T) {
	e, sys := newSys(topo.AMD4x4())
	b := NewBulk(sys, 1, 12, BulkOptions{Home: -1})
	if b.Sender() != 1 || b.Receiver() != 12 {
		t.Fatalf("endpoints %d->%d", b.Sender(), b.Receiver())
	}
	if b.SlotBytes() != DefaultBulkSlotLines*memory.LineSize {
		t.Fatalf("SlotBytes=%d", b.SlotBytes())
	}
	if b.Pending() {
		t.Fatal("fresh channel has pending payload")
	}
	if s := b.String(); s == "" {
		t.Fatal("empty String()")
	}
	e.Spawn("send", func(p *sim.Proc) { b.Send(p, []byte{1, 2, 3}) })
	e.Run()
	if !b.Pending() {
		t.Fatal("sent payload not pending")
	}
	snap := e.Metrics().Snapshot()
	if snap.Counters["urpc.bulk_transfers"] != 1 || snap.Counters["urpc.bulk_lines"] != 1 {
		t.Fatalf("registry: transfers=%d lines=%d",
			snap.Counters["urpc.bulk_transfers"], snap.Counters["urpc.bulk_lines"])
	}
}

// TestBulkBeatsRingAtFrameSize is the transport-level acceptance check: moving
// a 24-line Ethernet-frame payload by bulk channel must beat moving the same
// bytes as 24 single-line ring messages.
func TestBulkBeatsRingAtFrameSize(t *testing.T) {
	const lines, reps = 24, 20
	ring := func() sim.Time {
		e, sys := newSys(topo.AMD2x2())
		ch := New(sys, 0, 2, Options{Home: -1, Slots: DefaultSlots, Prefetch: true})
		var end sim.Time
		e.Spawn("recv", func(p *sim.Proc) {
			buf := make([]Message, DefaultSlots)
			for got := 0; got < lines*reps; {
				n := ch.RecvAll(p, buf)
				if n == 0 {
					p.Sleep(pollGap)
				}
				got += n
			}
			end = p.Now()
		})
		e.Spawn("send", func(p *sim.Proc) {
			msgs := make([]Message, lines)
			for r := 0; r < reps; r++ {
				ch.SendBatch(p, msgs)
			}
		})
		e.Run()
		assertFaultFree(t, e)
		return end
	}()
	bulk := func() sim.Time {
		e, sys := newSys(topo.AMD2x2())
		b := NewBulk(sys, 0, 2, BulkOptions{Slots: 8, SlotLines: lines, Home: -1, Prefetch: true})
		payload := make([]byte, lines*memory.LineSize)
		var end sim.Time
		e.Spawn("recv", func(p *sim.Proc) {
			for got := 0; got < reps; {
				if _, ok := b.TryRecv(p); ok {
					got++
					continue
				}
				p.Sleep(pollGap)
			}
			end = p.Now()
		})
		e.Spawn("send", func(p *sim.Proc) {
			for r := 0; r < reps; r++ {
				b.Send(p, payload)
			}
		})
		e.Run()
		assertFaultFree(t, e)
		return end
	}()
	if bulk >= ring {
		t.Fatalf("bulk transfer of %d-line payloads took %d cycles, ring took %d — bulk not faster",
			lines, bulk, ring)
	}
}
