package urpc

import (
	"testing"
	"testing/quick"

	"multikernel/internal/cache"
	"multikernel/internal/interconnect"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

func newSys(m *topo.Machine) (*sim.Engine, *cache.System) {
	e := sim.NewEngine(1)
	return e, cache.New(e, m, memory.New(m), interconnect.New(m))
}

func TestSingleMessageRoundTrip(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	ch := New(sys, 0, 2, Options{Home: -1})
	var got Message
	e.Spawn("recv", func(p *sim.Proc) { got = ch.Recv(p) })
	e.Spawn("send", func(p *sim.Proc) {
		p.Sleep(100)
		ch.Send(p, Message{1, 2, 3, 4, 5, 6, 7})
	})
	e.Run()
	if got != (Message{1, 2, 3, 4, 5, 6, 7}) {
		t.Fatalf("got %v", got)
	}
}

func TestFIFOOrderAcrossManyMessages(t *testing.T) {
	e, sys := newSys(topo.AMD4x4())
	ch := New(sys, 0, 12, Options{Home: -1, Slots: 4})
	const n = 100
	var got []uint64
	e.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			m := ch.Recv(p)
			got = append(got, m[0])
		}
	})
	e.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			ch.Send(p, Message{uint64(i)})
		}
	})
	e.Run()
	e.CheckQuiesced()
	if len(got) != n {
		t.Fatalf("received %d messages", len(got))
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("message %d carried %d (reordering or loss)", i, v)
		}
	}
	st := ch.Stats()
	if st.Sent != n || st.Received != n {
		t.Fatalf("stats %+v", st)
	}
}

func TestSenderBlocksWhenRingFull(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	ch := New(sys, 0, 2, Options{Home: -1, Slots: 4})
	e.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			ch.Send(p, Message{uint64(i)})
		}
	})
	e.Spawn("recv", func(p *sim.Proc) {
		p.Sleep(50_000) // let the sender hit the full ring
		for i := 0; i < 20; i++ {
			ch.Recv(p)
		}
	})
	e.Run()
	e.CheckQuiesced()
	if ch.Stats().FullStall == 0 {
		t.Fatal("sender never stalled on a 4-slot ring with a slow receiver")
	}
	if ch.Stats().Received != 20 {
		t.Fatalf("received %d", ch.Stats().Received)
	}
}

func TestOneWayLatencyMatchesPaperBallpark(t *testing.T) {
	// Paper Table 2: same-socket URPC on the 2×2 AMD system is ~450 cycles;
	// cross-socket one-hop is ~530. Accept ±25%.
	check := func(sender, receiver topo.CoreID, wantLo, wantHi sim.Time) {
		e, sys := newSys(topo.AMD2x2())
		ch := New(sys, sender, receiver, Options{Home: -1})
		var sentAt, gotAt sim.Time
		e.Spawn("recv", func(p *sim.Proc) {
			ch.Recv(p) // warm-up message: fills the ack line and slot caches
			ch.Recv(p)
			gotAt = p.Now()
		})
		e.Spawn("send", func(p *sim.Proc) {
			ch.Send(p, Message{1})
			p.Sleep(2000)
			sentAt = p.Now()
			ch.Send(p, Message{42})
		})
		e.Run()
		lat := gotAt - sentAt
		if lat < wantLo || lat > wantHi {
			t.Errorf("latency %d->%d = %d cycles, want in [%d, %d]", sender, receiver, lat, wantLo, wantHi)
		}
	}
	check(0, 1, 340, 560) // same socket: ~450
	check(0, 2, 400, 660) // one hop: ~532
}

func TestPipelinedThroughputBeatsLatencyBound(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	ch := New(sys, 0, 2, Options{Home: -1, Slots: 16})
	const n = 500
	var start, end sim.Time
	e.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			ch.Recv(p)
		}
		end = p.Now()
	})
	e.Spawn("send", func(p *sim.Proc) {
		start = p.Now()
		for i := 0; i < n; i++ {
			ch.Send(p, Message{uint64(i)})
		}
	})
	e.Run()
	perMsg := (end - start) / n
	// One-way latency is ~450 cycles; pipelining should push per-message cost
	// well below it (paper: 3.42 msgs/kcycle = ~290 cycles/msg).
	if perMsg >= 430 {
		t.Fatalf("pipelined cost %d cycles/msg, want < 430", perMsg)
	}
}

func TestRecvWindowBlocksAndIsNotified(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	ch := New(sys, 0, 2, Options{Home: -1})
	var got Message
	var recvDone sim.Time
	e.Spawn("recv", func(p *sim.Proc) {
		got = ch.RecvWindow(p, 1000)
		recvDone = p.Now()
	})
	e.Spawn("send", func(p *sim.Proc) {
		p.Sleep(500_000) // far beyond the polling window
		ch.Send(p, Message{7})
	})
	e.Run()
	e.CheckQuiesced()
	if got[0] != 7 {
		t.Fatalf("got %v", got)
	}
	if recvDone < 500_000 {
		t.Fatal("receiver completed before the message was sent")
	}
	if ch.Stats().Notifies != 1 {
		t.Fatalf("notifies=%d, want 1", ch.Stats().Notifies)
	}
}

func TestRecvWindowFastPathNoNotify(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	ch := New(sys, 0, 2, Options{Home: -1})
	e.Spawn("recv", func(p *sim.Proc) { ch.RecvWindow(p, 100_000) })
	e.Spawn("send", func(p *sim.Proc) {
		p.Sleep(300)
		ch.Send(p, Message{1})
	})
	e.Run()
	if ch.Stats().Notifies != 0 {
		t.Fatal("message within polling window should not need notification")
	}
}

func TestPrefetchImprovesThroughput(t *testing.T) {
	measure := func(prefetch bool) sim.Time {
		e, sys := newSys(topo.AMD8x4())
		ch := New(sys, 0, 4, Options{Home: -1, Slots: 16, Prefetch: prefetch})
		const n = 300
		var end sim.Time
		e.Spawn("recv", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				ch.Recv(p)
			}
			end = p.Now()
		})
		e.Spawn("send", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				ch.Send(p, Message{uint64(i)})
			}
		})
		e.Run()
		return end
	}
	plain, pf := measure(false), measure(true)
	if pf > plain {
		t.Fatalf("prefetch made throughput worse: %d vs %d", pf, plain)
	}
}

func TestNUMAHomePlacement(t *testing.T) {
	_, sys := newSys(topo.AMD4x4())
	ch := New(sys, 0, 12, Options{Home: -1}) // receiver core 12 is socket 3
	if got := sys.Memory().Home(ch.ring.Base); got != 3 {
		t.Fatalf("ring homed on socket %d, want 3 (receiver's)", got)
	}
	ch2 := New(sys, 0, 12, Options{Home: 1})
	if got := sys.Memory().Home(ch2.ring.Base); got != 1 {
		t.Fatalf("explicit home ignored: %d", got)
	}
}

func TestTinyRingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, sys := newSys(topo.AMD2x2())
	New(sys, 0, 1, Options{Slots: 1})
}

// Property: any payload survives the channel bit-exactly, in order, for any
// ring size >= 2.
func TestPayloadIntegrityProperty(t *testing.T) {
	f := func(payloads [][7]uint64, slots uint8) bool {
		if len(payloads) == 0 || len(payloads) > 60 {
			return true
		}
		e, sys := newSys(topo.AMD2x2())
		ch := New(sys, 1, 3, Options{Home: -1, Slots: int(slots%14) + 2})
		ok := true
		e.Spawn("recv", func(p *sim.Proc) {
			for _, want := range payloads {
				if got := ch.Recv(p); got != Message(want) {
					ok = false
				}
			}
		})
		e.Spawn("send", func(p *sim.Proc) {
			for _, m := range payloads {
				ch.Send(p, Message(m))
			}
		})
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCanSendAndPending(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	ch := New(sys, 0, 2, Options{Home: -1, Slots: 2})
	if !ch.CanSend() {
		t.Fatal("fresh channel cannot send")
	}
	if ch.Pending() {
		t.Fatal("fresh channel has pending message")
	}
	e.Spawn("send", func(p *sim.Proc) {
		ch.Send(p, Message{1})
		ch.Send(p, Message{2})
	})
	e.Run()
	if ch.CanSend() {
		t.Fatal("full 2-slot ring still claims send space")
	}
	if !ch.Pending() {
		t.Fatal("messages sent but none pending")
	}
	e.Spawn("recv", func(p *sim.Proc) {
		ch.Recv(p)
		ch.Recv(p)
	})
	e.Run()
	if ch.Pending() {
		t.Fatal("drained channel still pending")
	}
	if got := ch.Slots(); got != 2 {
		t.Fatalf("slots=%d", got)
	}
	if s := ch.String(); s == "" {
		t.Fatal("empty String()")
	}
}
