package urpc

import (
	"testing"
	"testing/quick"

	"multikernel/internal/cache"
	"multikernel/internal/interconnect"
	"multikernel/internal/memory"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/trace"
)

func newSys(m *topo.Machine) (*sim.Engine, *cache.System) {
	e := sim.NewEngine(1)
	return e, cache.New(e, m, memory.New(m), interconnect.New(m))
}

// assertFaultFree verifies that a fault-free workload never took a timeout or
// backoff-retry path: those are reserved for fault handling, and any nonzero
// registry count is an accidental latency regression.
func assertFaultFree(t *testing.T, e *sim.Engine) {
	t.Helper()
	snap := e.Metrics().Snapshot()
	if to, re := snap.Counters["urpc.timeouts"], snap.Counters["urpc.retries"]; to != 0 || re != 0 {
		t.Errorf("fault-free run recorded urpc.timeouts=%d urpc.retries=%d, want 0/0", to, re)
	}
}

func TestSingleMessageRoundTrip(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	ch := New(sys, 0, 2, Options{Home: -1})
	var got Message
	e.Spawn("recv", func(p *sim.Proc) { got = ch.Recv(p) })
	e.Spawn("send", func(p *sim.Proc) {
		p.Sleep(100)
		ch.Send(p, Message{1, 2, 3, 4, 5, 6, 7})
	})
	e.Run()
	if got != (Message{1, 2, 3, 4, 5, 6, 7}) {
		t.Fatalf("got %v", got)
	}
	assertFaultFree(t, e)
}

func TestFIFOOrderAcrossManyMessages(t *testing.T) {
	e, sys := newSys(topo.AMD4x4())
	ch := New(sys, 0, 12, Options{Home: -1, Slots: 4})
	const n = 100
	var got []uint64
	e.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			m := ch.Recv(p)
			got = append(got, m[0])
		}
	})
	e.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			ch.Send(p, Message{uint64(i)})
		}
	})
	e.Run()
	e.CheckQuiesced()
	if len(got) != n {
		t.Fatalf("received %d messages", len(got))
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("message %d carried %d (reordering or loss)", i, v)
		}
	}
	st := ch.Stats()
	if st.Sent != n || st.Received != n {
		t.Fatalf("stats %+v", st)
	}
	assertFaultFree(t, e)
}

func TestSenderBlocksWhenRingFull(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	ch := New(sys, 0, 2, Options{Home: -1, Slots: 4})
	e.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			ch.Send(p, Message{uint64(i)})
		}
	})
	e.Spawn("recv", func(p *sim.Proc) {
		p.Sleep(50_000) // let the sender hit the full ring
		for i := 0; i < 20; i++ {
			ch.Recv(p)
		}
	})
	e.Run()
	e.CheckQuiesced()
	if ch.Stats().FullStall == 0 {
		t.Fatal("sender never stalled on a 4-slot ring with a slow receiver")
	}
	if ch.Stats().Received != 20 {
		t.Fatalf("received %d", ch.Stats().Received)
	}
	assertFaultFree(t, e)
}

func TestOneWayLatencyMatchesPaperBallpark(t *testing.T) {
	// Paper Table 2: same-socket URPC on the 2×2 AMD system is ~450 cycles;
	// cross-socket one-hop is ~530. Accept ±25%.
	check := func(sender, receiver topo.CoreID, wantLo, wantHi sim.Time) {
		e, sys := newSys(topo.AMD2x2())
		ch := New(sys, sender, receiver, Options{Home: -1})
		var sentAt, gotAt sim.Time
		e.Spawn("recv", func(p *sim.Proc) {
			ch.Recv(p) // warm-up message: fills the ack line and slot caches
			ch.Recv(p)
			gotAt = p.Now()
		})
		e.Spawn("send", func(p *sim.Proc) {
			ch.Send(p, Message{1})
			p.Sleep(2000)
			sentAt = p.Now()
			ch.Send(p, Message{42})
		})
		e.Run()
		lat := gotAt - sentAt
		if lat < wantLo || lat > wantHi {
			t.Errorf("latency %d->%d = %d cycles, want in [%d, %d]", sender, receiver, lat, wantLo, wantHi)
		}
		assertFaultFree(t, e)
	}
	check(0, 1, 340, 560) // same socket: ~450
	check(0, 2, 400, 660) // one hop: ~532
}

func TestPipelinedThroughputBeatsLatencyBound(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	ch := New(sys, 0, 2, Options{Home: -1, Slots: 16})
	const n = 500
	var start, end sim.Time
	e.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			ch.Recv(p)
		}
		end = p.Now()
	})
	e.Spawn("send", func(p *sim.Proc) {
		start = p.Now()
		for i := 0; i < n; i++ {
			ch.Send(p, Message{uint64(i)})
		}
	})
	e.Run()
	perMsg := (end - start) / n
	// One-way latency is ~450 cycles; pipelining should push per-message cost
	// well below it (paper: 3.42 msgs/kcycle = ~290 cycles/msg).
	if perMsg >= 430 {
		t.Fatalf("pipelined cost %d cycles/msg, want < 430", perMsg)
	}
	assertFaultFree(t, e)
}

func TestRecvWindowBlocksAndIsNotified(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	ch := New(sys, 0, 2, Options{Home: -1})
	var got Message
	var recvDone sim.Time
	e.Spawn("recv", func(p *sim.Proc) {
		got = ch.RecvWindow(p, 1000)
		recvDone = p.Now()
	})
	e.Spawn("send", func(p *sim.Proc) {
		p.Sleep(500_000) // far beyond the polling window
		ch.Send(p, Message{7})
	})
	e.Run()
	e.CheckQuiesced()
	if got[0] != 7 {
		t.Fatalf("got %v", got)
	}
	if recvDone < 500_000 {
		t.Fatal("receiver completed before the message was sent")
	}
	if ch.Stats().Notifies != 1 {
		t.Fatalf("notifies=%d, want 1", ch.Stats().Notifies)
	}
	assertFaultFree(t, e)
}

func TestRecvWindowFastPathNoNotify(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	ch := New(sys, 0, 2, Options{Home: -1})
	e.Spawn("recv", func(p *sim.Proc) { ch.RecvWindow(p, 100_000) })
	e.Spawn("send", func(p *sim.Proc) {
		p.Sleep(300)
		ch.Send(p, Message{1})
	})
	e.Run()
	if ch.Stats().Notifies != 0 {
		t.Fatal("message within polling window should not need notification")
	}
	assertFaultFree(t, e)
}

func TestPrefetchImprovesThroughput(t *testing.T) {
	measure := func(prefetch bool) sim.Time {
		e, sys := newSys(topo.AMD8x4())
		ch := New(sys, 0, 4, Options{Home: -1, Slots: 16, Prefetch: prefetch})
		const n = 300
		var end sim.Time
		e.Spawn("recv", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				ch.Recv(p)
			}
			end = p.Now()
		})
		e.Spawn("send", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				ch.Send(p, Message{uint64(i)})
			}
		})
		e.Run()
		assertFaultFree(t, e)
		return end
	}
	plain, pf := measure(false), measure(true)
	if pf > plain {
		t.Fatalf("prefetch made throughput worse: %d vs %d", pf, plain)
	}
}

func TestNUMAHomePlacement(t *testing.T) {
	_, sys := newSys(topo.AMD4x4())
	ch := New(sys, 0, 12, Options{Home: -1}) // receiver core 12 is socket 3
	if got := sys.Memory().Home(ch.ring.Base); got != 3 {
		t.Fatalf("ring homed on socket %d, want 3 (receiver's)", got)
	}
	ch2 := New(sys, 0, 12, Options{Home: 1})
	if got := sys.Memory().Home(ch2.ring.Base); got != 1 {
		t.Fatalf("explicit home ignored: %d", got)
	}
}

func TestTinyRingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, sys := newSys(topo.AMD2x2())
	New(sys, 0, 1, Options{Slots: 1})
}

// Property: any payload survives the channel bit-exactly, in order, for any
// ring size >= 2.
func TestPayloadIntegrityProperty(t *testing.T) {
	f := func(payloads [][7]uint64, slots uint8) bool {
		if len(payloads) == 0 || len(payloads) > 60 {
			return true
		}
		e, sys := newSys(topo.AMD2x2())
		ch := New(sys, 1, 3, Options{Home: -1, Slots: int(slots%14) + 2})
		ok := true
		e.Spawn("recv", func(p *sim.Proc) {
			for _, want := range payloads {
				if got := ch.Recv(p); got != Message(want) {
					ok = false
				}
			}
		})
		e.Spawn("send", func(p *sim.Proc) {
			for _, m := range payloads {
				ch.Send(p, Message(m))
			}
		})
		e.Run()
		st := ch.Stats()
		snap := e.Metrics().Snapshot()
		return ok && st.Sent == uint64(len(payloads)) &&
			snap.Counters["urpc.timeouts"] == 0 && snap.Counters["urpc.retries"] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCanSendAndPending(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	ch := New(sys, 0, 2, Options{Home: -1, Slots: 2})
	if !ch.CanSend() {
		t.Fatal("fresh channel cannot send")
	}
	if ch.Pending() {
		t.Fatal("fresh channel has pending message")
	}
	e.Spawn("send", func(p *sim.Proc) {
		ch.Send(p, Message{1})
		ch.Send(p, Message{2})
	})
	e.Run()
	if ch.CanSend() {
		t.Fatal("full 2-slot ring still claims send space")
	}
	if !ch.Pending() {
		t.Fatal("messages sent but none pending")
	}
	e.Spawn("recv", func(p *sim.Proc) {
		ch.Recv(p)
		ch.Recv(p)
	})
	e.Run()
	if ch.Pending() {
		t.Fatal("drained channel still pending")
	}
	if got := ch.Slots(); got != 2 {
		t.Fatalf("slots=%d", got)
	}
	if s := ch.String(); s == "" {
		t.Fatal("empty String()")
	}
	assertFaultFree(t, e)
}

// TestSendTimeoutFastPathMatchesSend: with ring space available, SendTimeout
// must be cycle-identical to Send — the deadline machinery may not slow the
// fault-free path.
func TestSendTimeoutFastPathMatchesSend(t *testing.T) {
	measure := func(useTimeout bool) sim.Time {
		e, sys := newSys(topo.AMD2x2())
		ch := New(sys, 0, 2, Options{Home: -1})
		var took sim.Time
		e.Spawn("send", func(p *sim.Proc) {
			start := p.Now()
			if useTimeout {
				if !ch.SendTimeout(p, Message{1}, 10_000) {
					t.Error("SendTimeout failed with ring space available")
				}
			} else {
				ch.Send(p, Message{1})
			}
			took = p.Now() - start
		})
		e.Run()
		if useTimeout {
			assertFaultFree(t, e)
		}
		return took
	}
	plain, timed := measure(false), measure(true)
	if plain != timed {
		t.Fatalf("SendTimeout fast path took %d cycles, Send took %d", timed, plain)
	}
}

// TestSendTimeoutExpiresOnDeadReceiver: a receiver that never drains the ring
// (fail-stopped) makes SendTimeout give up by the deadline, with exponential
// backoff visible in the retry count.
func TestSendTimeoutExpiresOnDeadReceiver(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	ch := New(sys, 0, 2, Options{Home: -1, Slots: 2})
	const timeout = 20_000
	var gaveUpAt sim.Time
	var sent, failed int
	e.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			if ch.SendTimeout(p, Message{uint64(i)}, timeout) {
				sent++
			} else {
				failed++
				gaveUpAt = p.Now()
				return
			}
		}
	})
	e.Run()
	e.CheckQuiesced()
	if sent != 2 || failed != 1 {
		t.Fatalf("sent=%d failed=%d, want 2 slots filled then 1 timeout", sent, failed)
	}
	snap := e.Metrics().Snapshot()
	timeouts, retries := snap.Counters["urpc.timeouts"], snap.Counters["urpc.retries"]
	if timeouts != 1 {
		t.Fatalf("urpc.timeouts=%d, want 1", timeouts)
	}
	if retries == 0 {
		t.Fatal("no backoff retries recorded before the timeout")
	}
	// Exponential backoff keeps the retry count well below timeout/pollGap.
	if retries >= uint64(timeout/pollGap/2) {
		t.Fatalf("urpc.retries=%d suggests linear polling, want exponential backoff", retries)
	}
	if gaveUpAt > timeout+maxBackoffGap+1000 {
		t.Fatalf("gave up at %d, deadline was ~%d", gaveUpAt, timeout)
	}
}

// TestRecvTimeoutExpiresAndDelivers: RecvTimeout returns ok=false after the
// deadline on a silent channel, and still delivers when a message arrives
// in time.
func TestRecvTimeoutExpiresAndDelivers(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	ch := New(sys, 0, 2, Options{Home: -1})
	var firstOK, secondOK bool
	var second Message
	e.Spawn("recv", func(p *sim.Proc) {
		_, firstOK = ch.RecvTimeout(p, 5_000) // nothing sent yet: must expire
		second, secondOK = ch.RecvTimeout(p, 100_000)
	})
	e.Spawn("send", func(p *sim.Proc) {
		p.Sleep(30_000)
		ch.Send(p, Message{42})
	})
	e.Run()
	e.CheckQuiesced()
	if firstOK {
		t.Fatal("RecvTimeout delivered from an empty channel")
	}
	if !secondOK || second[0] != 42 {
		t.Fatalf("second recv: ok=%v msg=%v", secondOK, second)
	}
	snap := e.Metrics().Snapshot()
	if snap.Counters["urpc.timeouts"] != 1 || snap.Counters["urpc.retries"] == 0 {
		t.Fatalf("urpc.timeouts=%d urpc.retries=%d, want exactly 1 timeout and some retries",
			snap.Counters["urpc.timeouts"], snap.Counters["urpc.retries"])
	}
}

// TestTraceLinksSendToRecv: every transmitted message produces a FlowOut
// inside the sender's urpc.send span and a FlowIn inside the receiver's
// urpc.recv span carrying the same flow id, so an exported trace renders the
// cross-core message arrow. Channels on one engine must never share flow ids.
func TestTraceLinksSendToRecv(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	rec := trace.NewRecorder()
	e.SetTracer(rec)
	ch := New(sys, 0, 2, Options{Home: -1})
	ch2 := New(sys, 1, 3, Options{Home: -1})
	const n = 3
	e.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			ch.Recv(p)
		}
	})
	e.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			ch.Send(p, Message{uint64(i)})
		}
	})
	e.Spawn("recv2", func(p *sim.Proc) { ch2.Recv(p) })
	e.Spawn("send2", func(p *sim.Proc) { ch2.Send(p, Message{9}) })
	e.Run()
	out := map[uint64]int32{} // flow id -> emitting core
	in := map[uint64]int32{}
	for _, ev := range rec.Events() {
		if ev.Name != "urpc.msg" {
			continue
		}
		switch ev.Kind {
		case trace.FlowOut:
			if _, dup := out[ev.ID]; dup {
				t.Fatalf("flow id %#x emitted twice by senders", ev.ID)
			}
			out[ev.ID] = ev.Core
		case trace.FlowIn:
			in[ev.ID] = ev.Core
		}
	}
	if len(out) != n+1 || len(in) != n+1 {
		t.Fatalf("flow events: %d out, %d in, want %d each", len(out), len(in), n+1)
	}
	for id, senderCore := range out {
		recvCore, ok := in[id]
		if !ok {
			t.Fatalf("send flow %#x has no matching recv", id)
		}
		if senderCore == recvCore {
			t.Fatalf("flow %#x stayed on core %d, want cross-core link", id, senderCore)
		}
	}
}

// TestChannelDeadVerdict: MarkDead makes further deadline sends fail
// immediately without polling; draining already-written slots still works.
func TestChannelDeadVerdict(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	ch := New(sys, 0, 2, Options{Home: -1})
	e.Spawn("send", func(p *sim.Proc) {
		if !ch.SendTimeout(p, Message{7}, 10_000) {
			t.Error("send before verdict failed")
		}
		ch.MarkDead()
		start := p.Now()
		if ch.SendTimeout(p, Message{8}, 10_000) {
			t.Error("send succeeded on a dead channel")
		}
		if p.Now() != start {
			t.Error("dead-channel send burned cycles")
		}
	})
	e.Run()
	if !ch.Dead() {
		t.Fatal("verdict not recorded")
	}
	var got Message
	e.Spawn("recv", func(p *sim.Proc) { got = ch.Recv(p) })
	e.Run()
	if got[0] != 7 {
		t.Fatalf("in-flight message lost after verdict: %v", got)
	}
}
