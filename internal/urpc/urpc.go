// Package urpc implements user-level RPC channels (paper §4.6): the only
// inter-core communication mechanism in the multikernel. A channel is a ring
// of cache-line-sized slots in shared memory, written by a single sender core
// and polled by a single receiver core. The sender writes a message's payload
// words followed by a sequence word; the receiver polls the sequence word, so
// it can never observe a partially-written message.
//
// All transfer costs emerge from the cache-coherence model: a send
// invalidates the receiver's cached copy of the slot (one interconnect round
// trip) and the receiver's next poll fetches the line from the sender's cache
// (the second round trip) — exactly the two-round-trip fast path the paper
// describes for HyperTransport systems.
package urpc

import (
	"fmt"

	"multikernel/internal/cache"
	"multikernel/internal/memory"
	"multikernel/internal/metrics"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/trace"
)

// PayloadWords is the number of 64-bit payload words per message; the eighth
// word of the cache line carries the sequence number.
const PayloadWords = 7

// Message is one cache-line-sized URPC message.
type Message [PayloadWords]uint64

// DefaultSlots is the ring size used when none is specified — the queue
// length of 16 the paper uses for pipelined throughput measurements.
const DefaultSlots = 16

// Software-path costs in cycles, charged on top of the coherence transfers.
const (
	sendSetupCost = 14 // channel bookkeeping before the line write
	recvCheckCost = 10 // poll-loop check and branch
	recvCopyCost  = 18 // copying the payload out and advancing state
	pollGap       = 25 // cycles between successive idle polls
)

// maxBackoffGap caps the exponential poll backoff of the deadline variants.
const maxBackoffGap = 1600

// Stats counts per-channel activity. Deadline expiries and backoff re-polls
// live in the engine's metrics registry ("urpc.timeouts", "urpc.retries"), not
// here: they are fleet-wide health signals, and keeping one accumulation
// convention avoids the per-channel/per-registry drift the old ad-hoc fields
// suffered from.
type Stats struct {
	Sent      uint64
	Received  uint64
	FullStall uint64 // sends that had to wait for ring space
	Notifies  uint64 // blocked-receiver wakeups
}

// Channel is a unidirectional point-to-point URPC channel.
type Channel struct {
	sys      *cache.System
	eng      *sim.Engine
	Sender   topo.CoreID
	Receiver topo.CoreID

	ring  memory.Region // slots lines
	ack   memory.Region // one line: receiver's consumed count
	slots int

	sendSeq   uint64 // next sequence number to send (starts at 1)
	recvSeq   uint64 // next sequence number to receive
	sendAcked uint64 // sender's view of receiver progress (from the ack line)
	published uint64 // receiver progress as last written to the ack line
	prefetch  bool
	holdAck   bool // receive paths defer ack publication to ackConsumed

	blocked *sim.Proc // receiver parked awaiting notification, if any
	dead    bool      // peer declared fail-stopped; sends are refused
	mut     Mutation  // deliberate protocol defect for checker self-tests
	stats   Stats

	// OnRemoteDeliver, when set on the receiver's replica of a channel whose
	// endpoints live in different ParallelEngine partitions, runs after each
	// cross-partition ring-line delivery — the hook services (kv, monitors)
	// use to wake their dispatch proc, standing in for the sender-side
	// eng.Wake they would have issued under a single engine. Never invoked on
	// a serial engine or an intra-partition channel.
	OnRemoteDeliver func()

	// id is the channel's engine-unique serial; flow-event ids are
	// id<<32|seq, linking a send on the sender core to its receive on the
	// receiver core in exported traces.
	id uint64

	// Registry handles, shared by all channels of one engine.
	mSent, mReceived, mFullStall *metrics.Counter
	mNotifies, mTimeouts         *metrics.Counter
	mRetries                     *metrics.Counter
}

// Options configure channel construction.
type Options struct {
	// Slots is the ring size in messages; 0 means DefaultSlots.
	Slots int
	// Home is the NUMA socket for the ring buffer; -1 homes it on the
	// receiver's socket (the NUMA-aware default from §5.1).
	Home int
	// Prefetch enables receiver-side prefetching of the next slot,
	// trading single-message latency for pipelined throughput (§4.6).
	Prefetch bool
}

// Mutation selects a deliberate protocol defect. The schedule-exploration
// checker's self-tests (internal/check) arm these to prove the transport
// invariants actually bite: a checker that cannot catch a known-planted bug
// is not guarding anything. MutNone (the zero value) is the correct protocol
// and costs nothing.
type Mutation uint8

const (
	// MutNone runs the correct protocol.
	MutNone Mutation = iota
	// MutAckOverpublish publishes receiver progress one message beyond what
	// was actually consumed, silently granting the sender a ring slot whose
	// previous occupant was never delivered.
	MutAckOverpublish
	// MutDropNotify loses the parked-receiver wakeup: the sender believes the
	// notification was delivered, but the receiver stays parked.
	MutDropNotify
)

// Mutate arms a deliberate protocol defect (checker self-tests only).
func (c *Channel) Mutate(m Mutation) { c.mut = m }

// New creates a channel from sender to receiver over the given cache system.
func New(sys *cache.System, sender, receiver topo.CoreID, opts Options) *Channel {
	slots := opts.Slots
	if slots == 0 {
		slots = DefaultSlots
	}
	if slots < 2 {
		panic("urpc: channel needs at least 2 slots")
	}
	home := topo.SocketID(opts.Home)
	if opts.Home < 0 {
		home = sys.Machine().Socket(receiver)
	}
	eng := sys.Engine()
	reg := eng.Metrics()
	c := &Channel{
		sys:        sys,
		eng:        eng,
		Sender:     sender,
		Receiver:   receiver,
		ring:       sys.Memory().AllocLines(slots, home),
		ack:        sys.Memory().AllocLines(1, home),
		slots:      slots,
		prefetch:   opts.Prefetch,
		id:         eng.Serial(),
		mSent:      reg.Counter("urpc.sent"),
		mReceived:  reg.Counter("urpc.received"),
		mFullStall: reg.Counter("urpc.full_stalls"),
		mNotifies:  reg.Counter("urpc.notifies"),
		mTimeouts:  reg.Counter("urpc.timeouts"),
		mRetries:   reg.Counter("urpc.retries"),
	}
	// A one-time geometry record: the transport checker needs each channel's
	// ring size to verify that no slot is reused before its ack.
	eng.Tracer().Emit(uint64(eng.Now()), trace.Instant, trace.SubURPC, int32(sender), "urpc.chan", c.id<<32, uint64(slots))
	// Parallel boot: when sender and receiver live in different partitions,
	// the ring mirrors forward (writer: sender) and the ack line mirrors back
	// (writer: receiver). Both calls are no-ops on a serial engine or when
	// the endpoints share a partition. The construction runs identically in
	// every replica, so region registration order — the cross-replica
	// addressing scheme — lines up by construction.
	sys.ShareRegion(c.ring, sender, receiver, c.remoteArrival)
	sys.ShareRegion(c.ack, receiver, sender, nil)
	return c
}

// remoteArrival runs in the receiver's replica after a cross-partition ring
// line lands. It plays the sender's half of the poll-then-block protocol:
// a parked receiver gets the IPI-modeled wakeup notify would have sent, and
// the service-level hook (if any) runs so dispatch loops parked outside the
// channel learn about the arrival.
func (c *Channel) remoteArrival() {
	if c.OnRemoteDeliver != nil {
		c.OnRemoteDeliver()
	}
	if w := c.blocked; w != nil && c.Pending() {
		c.blocked = nil
		c.stats.Notifies++
		c.mNotifies.Inc()
		eng := c.eng
		eng.After(c.sys.Machine().Costs.IPIDeliver, func() { eng.Wake(w) })
	}
}

// Pair creates the two directions of a bidirectional link between a and b.
func Pair(sys *cache.System, a, b topo.CoreID, opts Options) (ab, ba *Channel) {
	return New(sys, a, b, opts), New(sys, b, a, opts)
}

// Stats returns a copy of the channel's counters.
func (c *Channel) Stats() Stats { return c.stats }

// Slots returns the ring size.
func (c *Channel) Slots() int { return c.slots }

func (c *Channel) slotAddr(seq uint64) memory.Addr {
	return c.ring.LineAt(int(seq % uint64(c.slots)))
}

// CanSend reports whether the ring has space according to the sender's
// current (possibly stale) view of receiver progress.
func (c *Channel) CanSend() bool {
	return c.sendSeq-c.sendAcked < uint64(c.slots)
}

// waitSpace blocks until the ring has space. The ack line is touched only
// when the sender's cached view (sendAcked) shows the ring full: a view that
// already proves space skips the coherence round trip entirely, so a
// pipelined sender reads the ack line at most once per ring traversal rather
// than once per send.
func (c *Channel) waitSpace(p *sim.Proc) {
	for c.sendSeq-c.sendAcked >= uint64(c.slots) {
		c.stats.FullStall++
		c.mFullStall.Inc()
		// Re-read the receiver's published progress from the ack line.
		c.sendAcked = c.sys.Load(p, c.Sender, c.ack.Base)
		if c.sendSeq-c.sendAcked >= uint64(c.slots) {
			p.Sleep(pollGap)
		}
	}
}

// Send transmits msg, blocking (polling the ack line) while the ring is full.
func (c *Channel) Send(p *sim.Proc, msg Message) {
	c.waitSpace(p)
	c.transmit(p, msg)
}

// SendBatch transmits msgs as pipelined bursts: up to a ring's worth of
// messages is written back-to-back behind a single setup charge and a single
// (stale-view) space check, and a parked receiver gets one coalesced wakeup
// per burst instead of one per message. This is the paper's "cost when
// pipelining" regime — the per-message cost approaches the slot write itself
// as the in-flight depth approaches the ring size.
func (c *Channel) SendBatch(p *sim.Proc, msgs []Message) {
	rec := c.eng.Tracer()
	// Kill audit: a sender fail-stopped mid-burst (Engine.Kill lands at one of
	// the pushSlot yields) has already made some slot writes visible — their
	// sequence words are published — but has not reached this burst's notify.
	// A receiver parked on the ring would then wait forever for messages that
	// are already there. The unwind path delivers the wakeup the slots have
	// earned; on a normal return notify has cleared c.blocked and this is a
	// no-op, so the fault-free path is cycle-identical.
	defer func() {
		if w := c.blocked; w != nil && c.Pending() {
			c.blocked = nil
			c.stats.Notifies++
			c.mNotifies.Inc()
			eng := c.eng
			eng.After(c.sys.Machine().Costs.IPIDeliver, func() { eng.Wake(w) })
		}
	}()
	for len(msgs) > 0 {
		c.waitSpace(p)
		n := c.slots - int(c.sendSeq-c.sendAcked)
		if n > len(msgs) {
			n = len(msgs)
		}
		rec.Emit(uint64(p.Now()), trace.Begin, trace.SubURPC, int32(c.Sender), "urpc.send", 0, uint64(n))
		p.Sleep(sendSetupCost)
		for _, m := range msgs[:n] {
			c.pushSlot(p, m)
		}
		c.notify(p)
		rec.Emit(uint64(p.Now()), trace.End, trace.SubURPC, int32(c.Sender), "urpc.send", 0, 0)
		msgs = msgs[n:]
	}
}

// InFlight returns the number of sent-but-unacknowledged messages under the
// sender's current (possibly stale) view of receiver progress.
func (c *Channel) InFlight() int { return int(c.sendSeq - c.sendAcked) }

// RefreshAck re-reads the receiver's published progress from the ack line,
// paying the coherence round trip. Windowed senders call it to learn about
// drained slots without transmitting.
func (c *Channel) RefreshAck(p *sim.Proc) {
	c.sendAcked = c.sys.Load(p, c.Sender, c.ack.Base)
}

// SendTimeout is Send with a deadline: if the ring stays full past timeout
// cycles — the signature of a fail-stopped receiver that no longer drains its
// slots — it gives up and reports false. While waiting it re-polls the ack
// line with exponential backoff (pollGap doubling up to maxBackoffGap), so a
// merely slow receiver costs progressively less coherence traffic. A send on
// a channel already marked Dead fails immediately without polling. The
// fault-free fast path (ring not full) is cycle-identical to Send.
func (c *Channel) SendTimeout(p *sim.Proc, msg Message, timeout sim.Time) bool {
	if c.dead {
		return false
	}
	if !c.waitSpaceTimeout(p, p.Now()+timeout) {
		return false
	}
	c.transmit(p, msg)
	return true
}

// waitSpaceTimeout is waitSpace with a deadline: it polls the ack line with
// the transport's exponential backoff and reports false if the ring is still
// full at the deadline.
func (c *Channel) waitSpaceTimeout(p *sim.Proc, deadline sim.Time) bool {
	gap := transportBackoff.Base
	for c.sendSeq-c.sendAcked >= uint64(c.slots) {
		c.stats.FullStall++
		c.mFullStall.Inc()
		c.sendAcked = c.sys.Load(p, c.Sender, c.ack.Base)
		if c.sendSeq-c.sendAcked < uint64(c.slots) {
			break
		}
		if p.Now() >= deadline {
			c.mTimeouts.Inc()
			c.eng.Tracer().Emit(uint64(p.Now()), trace.Instant, trace.SubURPC, int32(c.Sender), "urpc.timeout", c.id<<32, 0)
			return false
		}
		c.mRetries.Inc()
		c.eng.Tracer().Emit(uint64(p.Now()), trace.Instant, trace.SubURPC, int32(c.Sender), "urpc.backoff", c.id<<32, uint64(gap))
		p.Sleep(gap)
		gap = transportBackoff.Next(gap)
	}
	return true
}

// SendBatchTimeout is SendBatch with a deadline: it transmits msgs as
// pipelined bursts but gives up if the ring stays full past the deadline —
// the fail-stopped-receiver signature — returning how many messages were
// actually pushed. A return short of len(msgs) is the caller's cue to render
// a ChannelDead verdict. Sends on a channel already marked Dead push nothing.
func (c *Channel) SendBatchTimeout(p *sim.Proc, msgs []Message, timeout sim.Time) int {
	if c.dead {
		return 0
	}
	deadline := p.Now() + timeout
	rec := c.eng.Tracer()
	sent := 0
	// Same kill audit as SendBatch: an unwind mid-burst must still deliver the
	// wakeup that already-published slots have earned.
	defer func() {
		if w := c.blocked; w != nil && c.Pending() {
			c.blocked = nil
			c.stats.Notifies++
			c.mNotifies.Inc()
			eng := c.eng
			eng.After(c.sys.Machine().Costs.IPIDeliver, func() { eng.Wake(w) })
		}
	}()
	for len(msgs) > 0 {
		if !c.waitSpaceTimeout(p, deadline) {
			return sent
		}
		n := c.slots - int(c.sendSeq-c.sendAcked)
		if n > len(msgs) {
			n = len(msgs)
		}
		rec.Emit(uint64(p.Now()), trace.Begin, trace.SubURPC, int32(c.Sender), "urpc.send", 0, uint64(n))
		p.Sleep(sendSetupCost)
		for _, m := range msgs[:n] {
			c.pushSlot(p, m)
		}
		c.notify(p)
		rec.Emit(uint64(p.Now()), trace.End, trace.SubURPC, int32(c.Sender), "urpc.send", 0, 0)
		msgs = msgs[n:]
		sent += n
	}
	return sent
}

// transmit performs the actual slot write and receiver notification; the ring
// must have space.
func (c *Channel) transmit(p *sim.Proc, msg Message) {
	rec := c.eng.Tracer()
	rec.Emit(uint64(p.Now()), trace.Begin, trace.SubURPC, int32(c.Sender), "urpc.send", 0, 0)
	p.Sleep(sendSetupCost)
	c.pushSlot(p, msg)
	c.notify(p)
	rec.Emit(uint64(p.Now()), trace.End, trace.SubURPC, int32(c.Sender), "urpc.send", 0, 0)
}

// pushSlot writes msg into the next slot; the caller has verified ring space
// and charged the setup cost.
func (c *Channel) pushSlot(p *sim.Proc, msg Message) {
	var line [memory.WordsPerLine]uint64
	copy(line[:], msg[:])
	line[PayloadWords] = c.sendSeq + 1 // sequence word written last
	c.sys.StoreLine(p, c.Sender, c.slotAddr(c.sendSeq), line)
	c.sendSeq++
	c.stats.Sent++
	c.mSent.Inc()
	c.eng.Tracer().Emit(uint64(p.Now()), trace.FlowOut, trace.SubURPC, int32(c.Sender), "urpc.msg", c.id<<32|c.sendSeq, 0)
}

// notify wakes a parked receiver, if any. The receiver exhausted its polling
// window and asked its monitor to notify it; model the notification as an
// IPI-cost wakeup (§5.2). Batched sends call this once per burst, so a
// receiver behind on a pipelined stream pays one wakeup, not one per message.
func (c *Channel) notify(p *sim.Proc) {
	if c.blocked == nil {
		return
	}
	w := c.blocked
	c.blocked = nil
	c.stats.Notifies++
	c.mNotifies.Inc()
	if c.mut == MutDropNotify {
		return // planted defect: the wakeup is lost
	}
	// The wakeup is committed before the IPI-latency sleep: if the sender is
	// fail-stopped during the sleep (Engine.Kill unwinds it at that yield),
	// the deferred Unpark still runs, so the receiver is never stranded with
	// messages already visible in the ring. On the fault-free path the defer
	// fires right after the sleep — cycle-identical to the inline call.
	defer p.Unpark(w)
	p.Sleep(c.sys.Machine().Costs.IPIDeliver)
}

// TryRecv polls once; it returns the next message if one is ready.
func (c *Channel) TryRecv(p *sim.Proc) (Message, bool) {
	var msg Message
	slot := c.slotAddr(c.recvSeq)
	seqWord := slot + memory.Addr(PayloadWords*8)
	t0 := uint64(p.Now())
	p.Sleep(recvCheckCost)
	if c.sys.Load(p, c.Receiver, seqWord) != c.recvSeq+1 {
		return msg, false
	}
	// Retroactive span open: only successful polls become urpc.recv slices, so
	// idle polling does not flood the trace; t0 still covers the seq-word
	// fetch that dominates single-message latency.
	rec := c.eng.Tracer()
	rec.Emit(t0, trace.Begin, trace.SubURPC, int32(c.Receiver), "urpc.recv", 0, 0)
	line := c.sys.LoadLine(p, c.Receiver, slot)
	copy(msg[:], line[:PayloadWords])
	p.Sleep(recvCopyCost)
	c.recvSeq++
	c.stats.Received++
	c.mReceived.Inc()
	rec.Emit(uint64(p.Now()), trace.FlowIn, trace.SubURPC, int32(c.Receiver), "urpc.msg", c.id<<32|c.recvSeq, 0)
	// Publish progress so the sender can reuse slots. Writing every
	// half-ring amortizes the reverse-direction coherence traffic; an idle
	// ring publishes immediately so a stalled sender always makes progress.
	if !c.holdAck {
		c.ackConsumed(p)
	}
	if c.prefetch && c.recvSeq > 0 {
		c.sys.Prefetch(p, c.Receiver, c.slotAddr(c.recvSeq))
	}
	rec.Emit(uint64(p.Now()), trace.End, trace.SubURPC, int32(c.Receiver), "urpc.recv", 0, 0)
	return msg, true
}

// RecvAll drains every ready message into buf and returns how many it
// delivered. The poll-loop check cost is charged once per call, not once per
// message, and receiver progress is published to the ack line at most once
// per drained burst — the receive-side half of the pipelining regime. A
// return of 0 means the ring was empty (only the check cost was paid).
func (c *Channel) RecvAll(p *sim.Proc, buf []Message) int {
	t0 := uint64(p.Now())
	p.Sleep(recvCheckCost)
	rec := c.eng.Tracer()
	n := 0
	for n < len(buf) {
		slot := c.slotAddr(c.recvSeq)
		seqWord := slot + memory.Addr(PayloadWords*8)
		if c.sys.Load(p, c.Receiver, seqWord) != c.recvSeq+1 {
			break
		}
		if n == 0 {
			// Retroactive span open, as in TryRecv: empty polls leave no slice.
			rec.Emit(t0, trace.Begin, trace.SubURPC, int32(c.Receiver), "urpc.recv", 0, 0)
		}
		line := c.sys.LoadLine(p, c.Receiver, slot)
		copy(buf[n][:], line[:PayloadWords])
		p.Sleep(recvCopyCost)
		c.recvSeq++
		c.stats.Received++
		c.mReceived.Inc()
		rec.Emit(uint64(p.Now()), trace.FlowIn, trace.SubURPC, int32(c.Receiver), "urpc.msg", c.id<<32|c.recvSeq, 0)
		if c.prefetch {
			c.sys.Prefetch(p, c.Receiver, c.slotAddr(c.recvSeq))
		}
		n++
	}
	if n > 0 {
		if !c.holdAck {
			c.ackConsumed(p)
		}
		rec.Emit(uint64(p.Now()), trace.End, trace.SubURPC, int32(c.Receiver), "urpc.recv", 0, uint64(n))
	}
	return n
}

// ackConsumed publishes receiver progress to the ack line, amortized to one
// reverse-direction store per half-ring (an idle ring publishes immediately so
// a stalled sender always makes progress). The ordinary receive paths call it
// inline; channels constructed with holdAck (bulk descriptor rings) call it
// only after the dequeued descriptor's external payload has been consumed,
// because for them the ack is the slot-reuse grant.
func (c *Channel) ackConsumed(p *sim.Proc) {
	if c.recvSeq-c.published >= uint64(c.slots)/2 || !c.Pending() {
		pub := c.recvSeq
		if c.mut == MutAckOverpublish && pub > 0 {
			pub++ // planted defect: grant a slot that was never consumed
		}
		c.sys.Store(p, c.Receiver, c.ack.Base, pub)
		c.published = pub
		c.eng.Tracer().Emit(uint64(p.Now()), trace.Instant, trace.SubURPC, int32(c.Receiver), "urpc.ack", c.id<<32, pub)
	}
}

// Recv polls until a message arrives. It never blocks the simulated core in
// the scheduler sense — this is the dedicated-polling mode used by the
// microbenchmarks.
func (c *Channel) Recv(p *sim.Proc) Message {
	for {
		if m, ok := c.TryRecv(p); ok {
			return m
		}
		p.Sleep(pollGap)
	}
}

// RecvWindow polls for up to window cycles, then parks until the sender
// notifies (the poll-then-block strategy of §5.2). The returned message is
// always valid.
func (c *Channel) RecvWindow(p *sim.Proc, window sim.Time) Message {
	deadline := p.Now() + window
	for {
		if m, ok := c.TryRecv(p); ok {
			return m
		}
		if p.Now() >= deadline {
			break
		}
		p.Sleep(pollGap)
	}
	for {
		if c.blocked != nil {
			panic("urpc: second receiver blocked on channel")
		}
		c.blocked = p
		p.Park()
		c.blocked = nil
		// Charge the wakeup path: trap + context switch back to us.
		mc := c.sys.Machine().Costs
		p.Sleep(mc.Trap + mc.CSwitch)
		if m, ok := c.TryRecv(p); ok {
			return m
		}
	}
}

// RecvTimeout polls for a message until the deadline, backing off
// exponentially between polls (pollGap doubling up to maxBackoffGap). It
// reports false if the deadline passed with no message — the caller's cue to
// suspect the sender and render a ChannelDead verdict via MarkDead.
func (c *Channel) RecvTimeout(p *sim.Proc, timeout sim.Time) (Message, bool) {
	deadline := p.Now() + timeout
	gap := transportBackoff.Base
	for {
		if m, ok := c.TryRecv(p); ok {
			return m, true
		}
		if p.Now() >= deadline {
			c.mTimeouts.Inc()
			c.eng.Tracer().Emit(uint64(p.Now()), trace.Instant, trace.SubURPC, int32(c.Receiver), "urpc.timeout", c.id<<32, 0)
			return Message{}, false
		}
		c.mRetries.Inc()
		c.eng.Tracer().Emit(uint64(p.Now()), trace.Instant, trace.SubURPC, int32(c.Receiver), "urpc.backoff", c.id<<32, uint64(gap))
		p.Sleep(gap)
		gap = transportBackoff.Next(gap)
	}
}

// MarkDead records a ChannelDead verdict: the peer has been declared
// fail-stopped, and subsequent SendTimeout calls fail immediately. Receiving
// is unaffected (already-written slots may still be drained).
func (c *Channel) MarkDead() { c.dead = true }

// Dead reports whether the channel carries a ChannelDead verdict.
func (c *Channel) Dead() bool { return c.dead }

// PrefetchSlot issues a software prefetch for the next expected message slot
// from the receiver core. Polling loops over many channels use this to model
// the hardware stride prefetcher the paper credits for the master's receive
// loop performance (§5.1): by the time the slot is polled, its line is
// already (or soon) local.
func (c *Channel) PrefetchSlot(p *sim.Proc) {
	c.sys.Prefetch(p, c.Receiver, c.slotAddr(c.recvSeq))
}

// Pending reports whether a message is ready without charging any cost
// (engine-side inspection for tests and schedulers).
func (c *Channel) Pending() bool {
	slot := c.slotAddr(c.recvSeq)
	seqWord := slot + memory.Addr(PayloadWords*8)
	return c.sys.Memory().LoadWord(seqWord) == c.recvSeq+1
}

// String implements fmt.Stringer.
func (c *Channel) String() string {
	return fmt.Sprintf("urpc %d->%d (%d slots)", c.Sender, c.Receiver, c.slots)
}
