package urpc

import "multikernel/internal/sim"

// RetryPolicy is the one deadline/backoff policy shared by every layer that
// suspects a peer and retries: the transport's SendTimeout/RecvTimeout
// re-poll loops, the monitors' recovery deadlines (each round doubles the
// phase deadline), and fault-aware clients re-resolving a service after a
// ChannelDead verdict. It replaces the ad-hoc gap-doubling and deadline
// shifting that used to be duplicated across internal/urpc and
// internal/monitor/recovery.go.
//
// The policy is exponential with a cap: attempt n (0-based) backs off
// Base<<n cycles, clipped to Cap. With a seeded RNG attached, each gap is
// additionally jittered by ±Jitter fraction — drawn from that RNG only, so
// two runs with equal seeds retry at identical virtual times and composed
// fault schedules stay bit-for-bit reproducible.
type RetryPolicy struct {
	Base   sim.Time // first gap, and the deadline unit for Deadline
	Cap    sim.Time // largest gap; 0 = uncapped
	Tries  int      // attempts before Exhausted; 0 = unbounded
	Jitter float64  // ± fraction of each gap drawn from rng; 0 = none
	rng    *sim.RNG
}

// NewRetryPolicy builds a seeded-jitter policy. rng may be nil when
// Jitter == 0 (a purely deterministic exponential policy).
func NewRetryPolicy(base, cap sim.Time, tries int, jitter float64, rng *sim.RNG) RetryPolicy {
	return RetryPolicy{Base: base, Cap: cap, Tries: tries, Jitter: jitter, rng: rng}
}

// Gap returns the backoff before retry attempt n (0-based): Base<<n clipped
// to Cap, jittered when the policy carries an RNG. The unjittered sequence
// with Base=pollGap, Cap=maxBackoffGap is exactly the transport's historic
// 25, 50, 100, ... 1600 ladder.
func (rp RetryPolicy) Gap(attempt int) sim.Time {
	g := rp.Base
	// Shift with an overflow guard: past ~60 doublings the gap is pinned to
	// the cap (or an arbitrarily large value when uncapped).
	if attempt > 0 {
		if attempt > 60 {
			attempt = 60
		}
		g = rp.Base << uint(attempt)
	}
	if rp.Cap > 0 && g > rp.Cap {
		g = rp.Cap
	}
	if rp.Jitter > 0 && rp.rng != nil {
		g = rp.rng.Jitter(g, rp.Jitter)
	}
	return g
}

// Next advances a running gap one step: doubled, clipped to Cap. This is the
// incremental form the transport's poll loops use (they carry the gap across
// iterations instead of an attempt counter).
func (rp RetryPolicy) Next(gap sim.Time) sim.Time {
	if rp.Cap > 0 && gap >= rp.Cap {
		return rp.Cap
	}
	gap *= 2
	if rp.Cap > 0 && gap > rp.Cap {
		gap = rp.Cap
	}
	return gap
}

// Deadline returns now + Base<<round — the monitors' recovery-deadline
// schedule, where every recovery round doubles the phase deadline so a
// congested but live system eventually outruns its failure detector.
func (rp RetryPolicy) Deadline(now sim.Time, round int) sim.Time {
	if round > 60 {
		round = 60
	}
	return now + rp.Base<<uint(round)
}

// Exhausted reports whether attempt (0-based) is past the policy's budget.
func (rp RetryPolicy) Exhausted(attempt int) bool {
	return rp.Tries > 0 && attempt >= rp.Tries
}

// transportBackoff is the policy of the transport's own deadline variants:
// pollGap doubling to maxBackoffGap, no jitter (the poll cadence is part of
// the pinned cycle model).
var transportBackoff = RetryPolicy{Base: pollGap, Cap: maxBackoffGap}
