package urpc

import (
	"testing"

	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// Regression: Engine.Kill landing inside an in-flight SendBatch must never
// strand a parked receiver. Two windows are dangerous:
//
//   - inside notify(), after the receiver was claimed (c.blocked cleared) but
//     during the IPI-delivery sleep — the kill unwinds the sender before the
//     Unpark, so the wakeup must be delivered on the unwind path;
//   - between pushing slots and reaching notify() at all — messages are in
//     the ring, the receiver is parked, and nobody is left to send the IPI.
//
// The test sweeps the kill time across the entire batch (one fresh engine per
// offset) so every interleaving of the two windows is hit, and asserts the
// parked receiver always drains what was actually published.
func TestKillDuringSendBatchWakesParkedReceiver(t *testing.T) {
	const (
		batch   = 6
		sendAt  = 5_000 // receiver is parked well before this
		span    = 2_500 // covers SendBatch end to end (it runs ~1200 cycles)
		horizon = 200_000
	)
	for off := sim.Time(0); off < span; off += 3 {
		e, sys := newSys(topo.AMD2x2())
		ch := New(sys, 0, 1, Options{Slots: 4, Home: -1})

		got := 0
		e.Spawn("recv", func(p *sim.Proc) {
			p.SetDaemon(true)
			for {
				ch.RecvWindow(p, 100) // parks long before the send starts
				got++
			}
		})
		sender := e.Spawn("send", func(p *sim.Proc) {
			p.Sleep(sendAt)
			msgs := make([]Message, batch)
			for i := range msgs {
				msgs[i] = Message{uint64(i), 0, 0}
			}
			ch.SendBatch(p, msgs)
		})
		e.After(sendAt+off, func() { e.Kill(sender) })
		e.RunUntil(horizon)

		// Whatever made it into the ring must reach the receiver: a parked
		// receiver with undelivered messages is the deadlock this guards
		// against.
		if ch.Pending() {
			t.Fatalf("kill at +%d: receiver parked with messages pending (drained %d)", off, got)
		}
		if deadlocked := e.Deadlocked(); len(deadlocked) > 0 {
			t.Fatalf("kill at +%d: deadlocked procs %v", off, deadlocked)
		}
		e.Close()
	}
}

// The same window with the batch split across ring wraps: the sender blocks
// mid-batch on a full ring (the receiver drains one message at a time), so
// the kill can land while the sender is spinning for space with messages
// already published.
func TestKillWhileBatchBlockedOnFullRing(t *testing.T) {
	const horizon = 400_000
	for off := sim.Time(0); off < 20_000; off += 251 {
		e, sys := newSys(topo.AMD2x2())
		ch := New(sys, 0, 1, Options{Slots: 2, Home: -1})

		got := 0
		e.Spawn("recv", func(p *sim.Proc) {
			p.SetDaemon(true)
			for {
				ch.RecvWindow(p, 50)
				got++
				p.Sleep(3_000) // slow consumer forces FullStall in the sender
			}
		})
		sender := e.Spawn("send", func(p *sim.Proc) {
			msgs := make([]Message, 12)
			for i := range msgs {
				msgs[i] = Message{uint64(i), 0, 0}
			}
			ch.SendBatch(p, msgs)
		})
		e.After(off, func() { e.Kill(sender) })
		e.RunUntil(horizon)

		if ch.Pending() {
			t.Fatalf("kill at %d: receiver parked with messages pending (drained %d)", off, got)
		}
		e.Close()
	}
}
