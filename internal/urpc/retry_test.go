package urpc

import (
	"testing"

	"multikernel/internal/sim"
)

// The transport's historic backoff ladder is part of the pinned cycle model:
// extracting RetryPolicy must reproduce 25, 50, ..., 1600 (then pinned at
// 1600) exactly.
func TestRetryPolicyTransportLadder(t *testing.T) {
	want := []sim.Time{25, 50, 100, 200, 400, 800, 1600, 1600, 1600}
	gap := transportBackoff.Base
	for i, w := range want {
		if gap != w {
			t.Fatalf("step %d: gap = %d, want %d", i, gap, w)
		}
		gap = transportBackoff.Next(gap)
	}
	for i, w := range want {
		if g := transportBackoff.Gap(i); g != w {
			t.Fatalf("Gap(%d) = %d, want %d", i, g, w)
		}
	}
}

func TestRetryPolicyDeadlineDoubles(t *testing.T) {
	rp := RetryPolicy{Base: 200_000} // the monitors' 2*OpTimeout schedule
	now := sim.Time(1_000)
	for round := 0; round <= 4; round++ {
		want := now + sim.Time(200_000)<<uint(round)
		if d := rp.Deadline(now, round); d != want {
			t.Fatalf("Deadline(round %d) = %d, want %d", round, d, want)
		}
	}
}

func TestRetryPolicyJitterSeededDeterministic(t *testing.T) {
	a := NewRetryPolicy(1000, 16_000, 8, 0.25, sim.NewRNG(42))
	b := NewRetryPolicy(1000, 16_000, 8, 0.25, sim.NewRNG(42))
	for i := 0; i < 12; i++ {
		ga, gb := a.Gap(i), b.Gap(i)
		if ga != gb {
			t.Fatalf("attempt %d: same seed diverged (%d vs %d)", i, ga, gb)
		}
		base := sim.Time(1000) << uint(i)
		if base > 16_000 {
			base = 16_000
		}
		lo := sim.Time(float64(base) * 0.74)
		hi := sim.Time(float64(base)*1.26) + 1
		if ga < lo || ga > hi {
			t.Fatalf("attempt %d: jittered gap %d outside [%d,%d]", i, ga, lo, hi)
		}
	}
}

func TestRetryPolicyExhausted(t *testing.T) {
	rp := RetryPolicy{Base: 10, Tries: 3}
	for i := 0; i < 3; i++ {
		if rp.Exhausted(i) {
			t.Fatalf("attempt %d should be within budget", i)
		}
	}
	if !rp.Exhausted(3) {
		t.Fatal("attempt 3 should exhaust a 3-try budget")
	}
	unbounded := RetryPolicy{Base: 10}
	if unbounded.Exhausted(1 << 20) {
		t.Fatal("Tries=0 must mean unbounded")
	}
}
