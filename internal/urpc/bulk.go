package urpc

import (
	"fmt"

	"multikernel/internal/cache"
	"multikernel/internal/memory"
	"multikernel/internal/metrics"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/trace"
)

// Bulk-transfer channels (paper §4.6, §5.3): payloads larger than one cache
// line do not ride the message ring line-by-line. Instead the sender writes
// them into a slot of a shared-memory pool and posts a single one-line
// descriptor {slot sequence, byte length} on an ordinary URPC channel. The
// payload lines move between caches on first touch, at line granularity,
// through the ordinary MOESI transfer path — the receiver reads data straight
// out of the pool, so the transfer is zero-copy in the sense that no software
// intermediary ever copies the payload.
//
// The descriptor ring doubles as the slot-reuse protocol: the pool has
// exactly one payload slot per descriptor slot, and the descriptor ring's ack
// is deferred (holdAck) until the receiver has snapshotted the payload — so a
// sender that has ring space for a descriptor is guaranteed the corresponding
// pool slot has truly been consumed, not merely dequeued.

// Default bulk-channel geometry: 16 in-flight payloads of 24 lines each
// (24 lines = 1536 bytes, one full-size Ethernet frame).
const (
	DefaultBulkSlots     = 16
	DefaultBulkSlotLines = 24
)

// BulkOptions configure bulk-channel construction.
type BulkOptions struct {
	// Slots is the number of in-flight payloads (and the descriptor ring
	// size); 0 means DefaultBulkSlots.
	Slots int
	// SlotLines is the pool-slot capacity in cache lines; 0 means
	// DefaultBulkSlotLines.
	SlotLines int
	// Home is the NUMA socket for the pool and descriptor ring; -1 homes
	// both on the receiver's socket.
	Home int
	// Prefetch strides the receiver's payload reads: while line i is being
	// pulled, line i+1's transfer is already in flight, modelling the
	// hardware stride prefetcher on a sequential pool scan.
	Prefetch bool
}

// BulkChannel is a unidirectional channel for multi-line payloads.
type BulkChannel struct {
	sys       *cache.System
	desc      *Channel      // descriptor ring; its backpressure gates slot reuse
	pool      memory.Region // slots × slotLines payload lines
	slots     int
	slotLines int
	seq       uint64 // next pool slot sequence to write
	prefetch  bool

	mXfers, mLines *metrics.Counter
}

// NewBulk creates a bulk channel from sender to receiver. Slots must be at
// least 2 (the descriptor ring minimum).
func NewBulk(sys *cache.System, sender, receiver topo.CoreID, opts BulkOptions) *BulkChannel {
	slots := opts.Slots
	if slots == 0 {
		slots = DefaultBulkSlots
	}
	slotLines := opts.SlotLines
	if slotLines == 0 {
		slotLines = DefaultBulkSlotLines
	}
	home := topo.SocketID(opts.Home)
	if opts.Home < 0 {
		home = sys.Machine().Socket(receiver)
	}
	reg := sys.Engine().Metrics()
	desc := New(sys, sender, receiver, Options{Slots: slots, Home: int(home)})
	// The descriptor ack is the pool-slot reuse grant: defer it until the
	// payload has been read out (see read).
	desc.holdAck = true
	pool := sys.Memory().AllocLines(slots*slotLines, home)
	// Parallel boot: pool lines mirror sender→receiver like ring lines (no
	// doorbell — the descriptor ring carries the arrival notification, and
	// outbox ordering guarantees the payload lands before its descriptor).
	sys.ShareRegion(pool, sender, receiver, nil)
	return &BulkChannel{
		sys:       sys,
		desc:      desc,
		pool:      pool,
		slots:     slots,
		slotLines: slotLines,
		prefetch:  opts.Prefetch,
		mXfers:    reg.Counter("urpc.bulk_transfers"),
		mLines:    reg.Counter("urpc.bulk_lines"),
	}
}

// Sender returns the sending core.
func (b *BulkChannel) Sender() topo.CoreID { return b.desc.Sender }

// Receiver returns the receiving core.
func (b *BulkChannel) Receiver() topo.CoreID { return b.desc.Receiver }

// SlotBytes returns the payload capacity of one pool slot.
func (b *BulkChannel) SlotBytes() int { return b.slotLines * memory.LineSize }

// Stats returns the descriptor ring's counters.
func (b *BulkChannel) Stats() Stats { return b.desc.Stats() }

// Pending reports whether a payload is ready (engine-side inspection).
func (b *BulkChannel) Pending() bool { return b.desc.Pending() }

func (b *BulkChannel) slotBase(seq uint64) memory.Addr {
	return b.pool.LineAt(int(seq%uint64(b.slots)) * b.slotLines)
}

// Send moves payload through the next pool slot: the payload lines are
// written back-to-back (invalidating the receiver's copies), then a single
// descriptor message carries {sequence, length}. Blocks while the descriptor
// ring — and therefore the pool — is full.
func (b *BulkChannel) Send(p *sim.Proc, payload []byte) {
	if len(payload) > b.SlotBytes() {
		panic(fmt.Sprintf("urpc: bulk payload %d bytes exceeds slot capacity %d", len(payload), b.SlotBytes()))
	}
	rec := b.desc.eng.Tracer()
	rec.Emit(uint64(p.Now()), trace.Begin, trace.SubURPC, int32(b.desc.Sender), "urpc.bulk_send", 0, uint64(len(payload)))
	// Block on descriptor-ring space BEFORE touching the pool: until the
	// slot's previous descriptor is acked, the receiver may not have read the
	// payload out yet. (desc.Send re-checks below, but by then the sender's
	// view already proves space, so it cannot block again.)
	b.desc.waitSpace(p)
	base := b.slotBase(b.seq)
	var zero [memory.WordsPerLine]uint64
	lines := 0
	for i := 0; i*memory.LineSize < len(payload); i++ {
		b.sys.StoreLine(p, b.desc.Sender, base+memory.Addr(i*memory.LineSize), zero)
		lines++
	}
	b.sys.Memory().StoreBytes(base, payload)
	// StoreBytes bypasses the per-store mirror hook; forward the payload
	// bytes explicitly when the pool spans partitions (no-op otherwise).
	b.sys.MirrorBytes(base, payload)
	b.desc.Send(p, Message{b.seq, uint64(len(payload))})
	b.seq++
	b.mXfers.Inc()
	b.mLines.Add(uint64(lines))
	rec.Emit(uint64(p.Now()), trace.End, trace.SubURPC, int32(b.desc.Sender), "urpc.bulk_send", 0, 0)
}

// Recv blocks until a payload arrives and reads it out of the pool.
func (b *BulkChannel) Recv(p *sim.Proc) []byte {
	return b.read(p, b.desc.Recv(p))
}

// TryRecv polls once for a payload.
func (b *BulkChannel) TryRecv(p *sim.Proc) ([]byte, bool) {
	m, ok := b.desc.TryRecv(p)
	if !ok {
		return nil, false
	}
	return b.read(p, m), true
}

// read pulls the payload lines of descriptor m to the receiver's cache, then
// releases the pool slot by publishing the deferred descriptor ack.
func (b *BulkChannel) read(p *sim.Proc, m Message) []byte {
	size := int(m[1])
	base := b.slotBase(m[0])
	// Snapshot before acking: the sender may not reuse this slot until the
	// ack below is published.
	payload := b.sys.Memory().LoadBytes(base, size)
	rec := b.desc.eng.Tracer()
	rec.Emit(uint64(p.Now()), trace.Begin, trace.SubURPC, int32(b.desc.Receiver), "urpc.bulk_recv", 0, uint64(size))
	for i := 0; i*memory.LineSize < size; i++ {
		if b.prefetch && (i+1)*memory.LineSize < size {
			b.sys.Prefetch(p, b.desc.Receiver, base+memory.Addr((i+1)*memory.LineSize))
		}
		b.sys.LoadLine(p, b.desc.Receiver, base+memory.Addr(i*memory.LineSize))
	}
	b.desc.ackConsumed(p)
	rec.Emit(uint64(p.Now()), trace.End, trace.SubURPC, int32(b.desc.Receiver), "urpc.bulk_recv", 0, 0)
	return payload
}

// String implements fmt.Stringer.
func (b *BulkChannel) String() string {
	return fmt.Sprintf("urpc bulk %d->%d (%d slots x %d lines)",
		b.desc.Sender, b.desc.Receiver, b.slots, b.slotLines)
}
