package urpc

import (
	"bytes"
	"math/rand"
	"testing"

	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/trace"
)

// TestSendBatchFIFOThroughSmallRing: a vectored batch larger than the ring
// must arrive complete and in order — SendBatch internally splits into
// ring-sized bursts.
func TestSendBatchFIFOThroughSmallRing(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	ch := New(sys, 0, 2, Options{Home: -1, Slots: 4})
	const n = 40
	var got []uint64
	e.Spawn("recv", func(p *sim.Proc) {
		buf := make([]Message, 8)
		for len(got) < n {
			k := ch.RecvAll(p, buf)
			if k == 0 {
				p.Sleep(pollGap)
				continue
			}
			for _, m := range buf[:k] {
				got = append(got, m[0])
			}
		}
	})
	e.Spawn("send", func(p *sim.Proc) {
		msgs := make([]Message, n)
		for i := range msgs {
			msgs[i] = Message{uint64(i), uint64(n - i)}
		}
		ch.SendBatch(p, msgs)
	})
	e.Run()
	e.CheckQuiesced()
	if len(got) != n {
		t.Fatalf("received %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("message %d carried %d (reordering or loss)", i, v)
		}
	}
	st := ch.Stats()
	if st.Sent != n || st.Received != n {
		t.Fatalf("stats %+v", st)
	}
	assertFaultFree(t, e)
}

// TestSendSkipsAckReadWithProvenSpace is the satellite-2 regression test: a
// sender whose cached view already proves ring space must not touch the ack
// line at all. FullStall counts exactly the ack-line reads of the wait path,
// so filling the ring from empty must leave it at zero, and the first send
// past a drained-but-stale view must cost exactly one.
func TestSendSkipsAckReadWithProvenSpace(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	ch := New(sys, 0, 2, Options{Home: -1, Slots: 4})
	e.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			ch.Send(p, Message{uint64(i)})
		}
	})
	e.Run()
	if st := ch.Stats(); st.FullStall != 0 {
		t.Fatalf("filling an empty ring paid %d ack reads, want 0", st.FullStall)
	}
	// Drain the ring; the sender's view is now stale (it still believes the
	// ring is full).
	e.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			ch.Recv(p)
		}
	})
	e.Run()
	if ch.InFlight() != 4 {
		t.Fatalf("sender view refreshed without an ack read: InFlight=%d", ch.InFlight())
	}
	// One more send: exactly one ack read discovers the drained ring, and the
	// recovered view then proves space for three more sends for free.
	e.Spawn("send2", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			ch.Send(p, Message{uint64(i)})
		}
	})
	e.Run()
	if st := ch.Stats(); st.FullStall != 1 {
		t.Fatalf("stale-view refill paid %d ack reads, want exactly 1", st.FullStall)
	}
	assertFaultFree(t, e)
}

// TestSendBatchCoalescesNotify: a parked receiver woken by a burst pays one
// notification for the whole burst, not one per message.
func TestSendBatchCoalescesNotify(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	ch := New(sys, 0, 2, Options{Home: -1})
	const burst = 5
	var got int
	e.Spawn("recv", func(p *sim.Proc) {
		ch.RecvWindow(p, 1000) // polls out the window, then parks
		got++
		buf := make([]Message, burst)
		for got < burst {
			got += ch.RecvAll(p, buf)
		}
	})
	e.Spawn("send", func(p *sim.Proc) {
		p.Sleep(500_000) // far beyond the receiver's polling window
		msgs := make([]Message, burst)
		for i := range msgs {
			msgs[i] = Message{uint64(i)}
		}
		ch.SendBatch(p, msgs)
	})
	e.Run()
	e.CheckQuiesced()
	if got != burst {
		t.Fatalf("received %d of %d", got, burst)
	}
	if n := ch.Stats().Notifies; n != 1 {
		t.Fatalf("burst of %d woke the receiver %d times, want exactly 1", burst, n)
	}
	assertFaultFree(t, e)
}

// TestRecvAllChargesCheckOncePerPoll: draining k ready messages with one
// RecvAll must be strictly cheaper than k TryRecv calls, because the poll
// check is charged once per call rather than once per message.
func TestRecvAllChargesCheckOncePerPoll(t *testing.T) {
	const k = 8
	measure := func(burst bool) sim.Time {
		e, sys := newSys(topo.AMD2x2())
		ch := New(sys, 0, 2, Options{Home: -1})
		e.Spawn("send", func(p *sim.Proc) {
			msgs := make([]Message, k)
			for i := range msgs {
				msgs[i] = Message{uint64(i)}
			}
			ch.SendBatch(p, msgs)
		})
		e.Run()
		var took sim.Time
		e.Spawn("recv", func(p *sim.Proc) {
			start := p.Now()
			if burst {
				buf := make([]Message, k)
				if n := ch.RecvAll(p, buf); n != k {
					t.Errorf("RecvAll drained %d of %d ready messages", n, k)
				}
			} else {
				for i := 0; i < k; i++ {
					if _, ok := ch.TryRecv(p); !ok {
						t.Errorf("TryRecv %d found empty ring", i)
					}
				}
			}
			took = p.Now() - start
		})
		e.Run()
		assertFaultFree(t, e)
		return took
	}
	single, burst := measure(false), measure(true)
	if burst >= single {
		t.Fatalf("RecvAll burst drain took %d cycles, k TryRecvs took %d — burst not cheaper", burst, single)
	}
	// The saving is at least the (k-1) skipped check charges.
	if single-burst < (k-1)*recvCheckCost {
		t.Fatalf("burst saving %d cycles, want >= %d (k-1 check charges)", single-burst, (k-1)*recvCheckCost)
	}
}

// TestRecvAllEmptyRing: an empty poll returns 0, receives nothing, and leaves
// no urpc.recv slice in the trace (the span open is retroactive on first
// delivery).
func TestRecvAllEmptyRing(t *testing.T) {
	e, sys := newSys(topo.AMD2x2())
	rec := trace.NewRecorder()
	e.SetTracer(rec)
	ch := New(sys, 0, 2, Options{Home: -1})
	e.Spawn("recv", func(p *sim.Proc) {
		buf := make([]Message, 4)
		if n := ch.RecvAll(p, buf); n != 0 {
			t.Errorf("RecvAll on empty ring returned %d", n)
		}
	})
	e.Run()
	if st := ch.Stats(); st.Received != 0 {
		t.Fatalf("stats %+v", st)
	}
	for _, ev := range rec.Events() {
		if ev.Name == "urpc.recv" {
			t.Fatal("empty poll left a urpc.recv slice in the trace")
		}
	}
}

// TestBatchedVsUnbatchedEquivalence runs the same 30-message workload with an
// identical burst-draining receiver, sending either as vectored batches
// (SendBatch) or one message at a time (Send). Each variant must be fully
// deterministic — byte-identical exported traces across repeated runs — and
// the batched sender must retire its sends at a strictly earlier virtual time
// (the amortized per-burst setup is the point), delivering the identical
// payload sequence. The receiver's completion time gets a few idle-poll
// cycles of slack: its phase relative to the last arrival shifts with the
// batching.
func TestBatchedVsUnbatchedEquivalence(t *testing.T) {
	const n = 30
	run := func(batched bool) (traceBytes []byte, sendEnd, end sim.Time, got []uint64) {
		e, sys := newSys(topo.AMD2x2())
		rec := trace.NewRecorder()
		e.SetTracer(rec)
		ch := New(sys, 0, 2, Options{Home: -1})
		e.Spawn("recv", func(p *sim.Proc) {
			buf := make([]Message, DefaultSlots)
			for len(got) < n {
				k := ch.RecvAll(p, buf)
				if k == 0 {
					p.Sleep(pollGap)
					continue
				}
				for _, m := range buf[:k] {
					got = append(got, m[0])
				}
			}
			end = p.Now()
		})
		e.Spawn("send", func(p *sim.Proc) {
			if batched {
				msgs := make([]Message, n)
				for i := range msgs {
					msgs[i] = Message{uint64(i)}
				}
				ch.SendBatch(p, msgs)
			} else {
				for i := 0; i < n; i++ {
					ch.Send(p, Message{uint64(i)})
				}
			}
			sendEnd = p.Now()
		})
		e.Run()
		assertFaultFree(t, e)
		var buf bytes.Buffer
		if err := trace.WriteJSON(&buf, rec); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), sendEnd, end, got
	}
	for _, batched := range []bool{true, false} {
		tr1, s1, end1, _ := run(batched)
		tr2, s2, end2, _ := run(batched)
		if !bytes.Equal(tr1, tr2) || s1 != s2 || end1 != end2 {
			t.Fatalf("batched=%v: repeated runs diverged (end %d vs %d)", batched, end1, end2)
		}
	}
	_, batchedSend, batchedEnd, batchedGot := run(true)
	_, plainSend, plainEnd, plainGot := run(false)
	for i := range plainGot {
		if batchedGot[i] != plainGot[i] {
			t.Fatalf("payload %d differs: batched %d, unbatched %d", i, batchedGot[i], plainGot[i])
		}
	}
	if batchedSend >= plainSend {
		t.Fatalf("batched sender retired at %d, not before unbatched at %d", batchedSend, plainSend)
	}
	if slack := sim.Time(pollGap + recvCheckCost + recvCopyCost); batchedEnd > plainEnd+slack*10 {
		t.Fatalf("batched delivery finished at %d, far after unbatched at %d", batchedEnd, plainEnd)
	}
}

// TestSendBatchRecvAllProperty: for random ring capacities, burst shapes and
// receive-buffer sizes, RecvAll must drain exactly the sequence SendBatch
// wrote — same count, same order, same payload words — with the channel
// counters agreeing. Inputs are pre-generated from the trial seed so the
// workload never depends on the schedule, and each failure names its trial.
func TestSendBatchRecvAllProperty(t *testing.T) {
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(0x5ba7c4 + int64(trial)))
		slots := 2 + rng.Intn(31)
		bufN := 1 + rng.Intn(2*slots+1)
		nBursts := 1 + rng.Intn(8)
		bursts := make([][]Message, nBursts)
		gaps := make([]sim.Time, nBursts)
		var want []Message
		for b := range bursts {
			n := 1 + rng.Intn(3*slots)
			bursts[b] = make([]Message, n)
			for i := range bursts[b] {
				bursts[b][i] = Message{rng.Uint64(), uint64(len(want) + i), uint64(b)}
			}
			want = append(want, bursts[b]...)
			gaps[b] = sim.Time(rng.Intn(4000))
		}

		e, sys := newSys(topo.AMD2x2())
		ch := New(sys, 0, 2, Options{Home: -1, Slots: slots})
		var got []Message
		e.Spawn("recv", func(p *sim.Proc) {
			buf := make([]Message, bufN)
			for len(got) < len(want) {
				k := ch.RecvAll(p, buf)
				if k == 0 {
					p.Sleep(pollGap)
					continue
				}
				got = append(got, buf[:k]...)
			}
		})
		e.Spawn("send", func(p *sim.Proc) {
			for b, msgs := range bursts {
				ch.SendBatch(p, msgs)
				p.Sleep(gaps[b])
			}
		})
		e.Run()
		e.CheckQuiesced()

		if len(got) != len(want) {
			t.Fatalf("trial %d (slots %d buf %d): received %d of %d",
				trial, slots, bufN, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (slots %d buf %d): message %d is %v, want %v",
					trial, slots, bufN, i, got[i], want[i])
			}
		}
		if st := ch.Stats(); st.Sent != uint64(len(want)) || st.Received != uint64(len(want)) {
			t.Fatalf("trial %d: stats %+v, want %d sent and received", trial, st, len(want))
		}
		assertFaultFree(t, e)
		e.Close()
	}
}
