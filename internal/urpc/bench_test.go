package urpc

import (
	"testing"

	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// Host microbenchmarks for the v2 transport. Besides the usual ns/op (host
// cost of simulating the workload), each reports a deterministic
// simulated-cycle metric — identical on every run and every machine — which
// the CI overhead gate pins against a committed baseline: a transport change
// that silently regresses per-message or per-line cost fails CI even though
// all functional tests still pass.

// pipelinedRun moves msgs messages over a one-hop channel on the 8×4 machine
// with both sides in v2 burst mode and returns the virtual cycles consumed.
func pipelinedRun(msgs int) sim.Time {
	e, sys := newSys(topo.AMD8x4())
	ch := New(sys, 0, 4, Options{Home: -1, Slots: DefaultSlots, Prefetch: true})
	var start, end sim.Time
	e.Spawn("recv", func(p *sim.Proc) {
		buf := make([]Message, DefaultSlots)
		for got := 0; got < msgs; {
			n := ch.RecvAll(p, buf)
			if n == 0 {
				p.Sleep(pollGap)
			}
			got += n
		}
		end = p.Now()
	})
	e.Spawn("send", func(p *sim.Proc) {
		start = p.Now()
		batch := make([]Message, DefaultSlots)
		for sent := 0; sent < msgs; {
			n := len(batch)
			if n > msgs-sent {
				n = msgs - sent
			}
			for i := range batch[:n] {
				batch[i] = Message{uint64(sent + i)}
			}
			ch.SendBatch(p, batch[:n])
			sent += n
		}
	})
	e.Run()
	return end - start
}

func BenchmarkURPCPipelined(b *testing.B) {
	const msgs = 500
	var cycles sim.Time
	for i := 0; i < b.N; i++ {
		cycles = pipelinedRun(msgs)
	}
	b.ReportMetric(float64(cycles)/msgs, "simcycles/msg")
}

// bulkRun moves reps frame-sized payloads through a one-hop bulk channel on
// the 8×4 machine and returns the virtual cycles consumed.
func bulkRun(reps int) sim.Time {
	e, sys := newSys(topo.AMD8x4())
	bulk := NewBulk(sys, 0, 4, BulkOptions{
		Slots: 8, SlotLines: DefaultBulkSlotLines, Home: -1, Prefetch: true,
	})
	payload := make([]byte, bulk.SlotBytes())
	for i := range payload {
		payload[i] = byte(i)
	}
	var start, end sim.Time
	e.Spawn("recv", func(p *sim.Proc) {
		for got := 0; got < reps; {
			if _, ok := bulk.TryRecv(p); ok {
				got++
				continue
			}
			p.Sleep(pollGap)
		}
		end = p.Now()
	})
	e.Spawn("send", func(p *sim.Proc) {
		start = p.Now()
		for r := 0; r < reps; r++ {
			bulk.Send(p, payload)
		}
	})
	e.Run()
	return end - start
}

func BenchmarkBulkTransfer(b *testing.B) {
	const reps = 50
	var cycles sim.Time
	for i := 0; i < b.N; i++ {
		cycles = bulkRun(reps)
	}
	b.ReportMetric(float64(cycles)/(reps*DefaultBulkSlotLines), "simcycles/line")
}
