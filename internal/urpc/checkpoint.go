package urpc

// Checkpoint serialization for one channel's Go-side protocol state. The
// ring and ack lines themselves live in simulated memory and travel with the
// memory image; this blob carries the sender/receiver cursors and counters
// that shadow them. A channel with a parked receiver (blocked != nil) is not
// quiescent — the wait is a goroutine state the image cannot carry — so it
// is an error, matching the engine-level quiescence rule.

import (
	"fmt"
	"io"

	"multikernel/internal/ckpt"
)

// chDead is the channel flag bit in the serialized image.
const chDead = 1 << iota

// CheckpointState serializes the channel's cursors, flags and counters.
func (c *Channel) CheckpointState(w io.Writer) error {
	if c.blocked != nil {
		return fmt.Errorf("urpc: channel %d->%d has a blocked receiver (not quiescent)", c.Sender, c.Receiver)
	}
	var flags uint64
	if c.dead {
		flags |= chDead
	}
	return ckpt.WriteU64(w, c.sendSeq, c.recvSeq, c.sendAcked, c.published, flags,
		c.stats.Sent, c.stats.Received, c.stats.FullStall, c.stats.Notifies)
}

// RestoreState reads back what CheckpointState wrote.
func (c *Channel) RestoreState(r io.Reader) error {
	var flags uint64
	if err := ckpt.ReadU64(r, &c.sendSeq, &c.recvSeq, &c.sendAcked, &c.published, &flags,
		&c.stats.Sent, &c.stats.Received, &c.stats.FullStall, &c.stats.Notifies); err != nil {
		return err
	}
	c.dead = flags&chDead != 0
	c.blocked = nil
	return nil
}
