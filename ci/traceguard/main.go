// Command traceguard enforces the trace layer's disabled-overhead contract in
// CI: it runs the tracing-off benchmarks (-bench=TraceOff in internal/sim)
// several times, takes the minimum ns/op per benchmark (the least-noisy
// estimate of the true cost), and fails if any exceeds its committed baseline
// in ci/trace_overhead_baseline.txt by more than the tolerance.
//
// Usage:
//
//	go run ./ci/traceguard            # check against the baseline
//	go run ./ci/traceguard -update    # re-measure and rewrite the baseline
//
// The baseline is machine-dependent; -tolerance (default 0.05 per the
// tracing-overhead budget) can be widened on heterogeneous runners, and
// -update refreshes the file after intentional engine changes.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

const baselineFile = "ci/trace_overhead_baseline.txt"

func main() {
	update := flag.Bool("update", false, "rewrite the baseline from fresh measurements")
	tolerance := flag.Float64("tolerance", 0.05, "allowed fractional regression over the baseline")
	count := flag.Int("count", 5, "benchmark repetitions (minimum taken)")
	benchtime := flag.String("benchtime", "0.3s", "per-repetition benchmark time")
	flag.Parse()

	measured, err := runBenchmarks(*count, *benchtime)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceguard: %v\n", err)
		os.Exit(1)
	}
	if len(measured) == 0 {
		fmt.Fprintln(os.Stderr, "traceguard: no TraceOff benchmarks found")
		os.Exit(1)
	}

	if *update {
		if err := writeBaseline(measured); err != nil {
			fmt.Fprintf(os.Stderr, "traceguard: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("baseline %s updated:\n", baselineFile)
		for _, name := range sortedKeys(measured) {
			fmt.Printf("  %-28s %10.2f ns/op\n", name, measured[name])
		}
		return
	}

	baseline, err := readBaseline()
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceguard: %v (run with -update to create it)\n", err)
		os.Exit(1)
	}
	failed := false
	for _, name := range sortedKeys(measured) {
		got := measured[name]
		want, ok := baseline[name]
		if !ok {
			fmt.Printf("NEW   %-28s %10.2f ns/op (no baseline; run -update)\n", name, got)
			failed = true
			continue
		}
		ratio := got / want
		status := "ok   "
		if ratio > 1+*tolerance {
			status = "SLOW "
			failed = true
		}
		fmt.Printf("%s %-28s %10.2f ns/op vs baseline %10.2f (%+.1f%%)\n",
			status, name, got, want, (ratio-1)*100)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "traceguard: tracing-off overhead regressed beyond %.0f%%\n", *tolerance*100)
		os.Exit(1)
	}
}

// runBenchmarks executes the TraceOff benchmarks and returns the minimum
// ns/op observed per benchmark name.
func runBenchmarks(count int, benchtime string) (map[string]float64, error) {
	cmd := exec.Command("go", "test", "-run=NONE", "-bench=TraceOff",
		"-count="+strconv.Itoa(count), "-benchtime="+benchtime, "./internal/sim/")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("benchmark run failed: %v\n%s", err, out)
	}
	min := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	for sc.Scan() {
		// "BenchmarkTraceOffWake   258276   799.1 ns/op   0 B/op   0 allocs/op"
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || fields[3] != "ns/op" {
			continue
		}
		name := strings.TrimSuffix(fields[0], "-"+lastCPUSuffix(fields[0]))
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		if cur, ok := min[name]; !ok || ns < cur {
			min[name] = ns
		}
	}
	return min, nil
}

// lastCPUSuffix returns the trailing GOMAXPROCS suffix of a benchmark name
// ("8" in "BenchmarkFoo-8"), or "" when absent.
func lastCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i+1:]
}

func readBaseline() (map[string]float64, error) {
	data, err := os.ReadFile(baselineFile)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s: malformed line %q", baselineFile, line)
		}
		ns, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", baselineFile, err)
		}
		out[fields[0]] = ns
	}
	return out, nil
}

func writeBaseline(m map[string]float64) error {
	var b strings.Builder
	b.WriteString("# Minimum ns/op of the tracing-off benchmarks (ci/traceguard -update).\n")
	b.WriteString("# CI fails when a measurement exceeds its line here by >5%.\n")
	for _, name := range sortedKeys(m) {
		fmt.Fprintf(&b, "%s %.2f\n", name, m[name])
	}
	return os.WriteFile(baselineFile, []byte(b.String()), 0o644)
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
