// Command traceguard enforces two cost contracts in CI against committed
// baselines in ci/trace_overhead_baseline.txt:
//
//   - The trace layer's disabled-overhead contract: the tracing-off
//     benchmarks (-bench=TraceOff in internal/sim) run several times, the
//     minimum ns/op per benchmark is taken (the least-noisy estimate of the
//     true cost), and any exceeding its baseline by more than -tolerance
//     fails. These are host-time measurements, so the baseline is
//     machine-dependent and the tolerance absorbs runner noise.
//
//   - The URPC transport-cost contract: the v2 transport benchmarks
//     (-bench='URPCPipelined|BulkTransfer' in internal/urpc) report simulated
//     cycles per message and per line. Those metrics are fully deterministic
//     — same value on every run and every machine — so they are pinned
//     exactly (keys with a ":unit" suffix in the baseline): any regression
//     fails, and an improvement prints a reminder to refresh the baseline.
//
//   - The parallel-engine determinism contract: the pinned engine workload
//     (-bench=ParallelEnginePinned in internal/sim) replays the same
//     virtual-time window serially and at 2 and 4 workers, reporting the
//     deterministic simevents/op count per worker configuration. The three
//     entries are pinned exactly like the URPC metrics, so a parallel run
//     that dispatches even one event more or fewer than the committed
//     baseline — i.e. diverges from the serial schedule — fails CI.
//
//   - The parallel-boot determinism contract: the pinned full-system boot
//     workload (-bench=BootParallelPinned in internal/expt) boots the whole
//     multikernel on the 8-socket machine with core.BootParallel and replays
//     the staged shootdown schedule at 1, 2 and 4 workers. Its simevents/op
//     entries are pinned exactly and must match across worker counts — the
//     booted-system analogue of the engine-level gate above.
//
//   - The scaled-coherence determinism contract: the pinned contended
//     workload (-bench=DirectoryPinned in internal/expt) replays the
//     256-core mesh under broadcast-snoop and directory coherence. Both
//     simevents/op entries are pinned exactly, so a cost-model change in
//     either mode — or any drift in the scaled machines' schedules — fails
//     CI.
//
//   - The observability-plane cost contract: the pinned obs workload
//     (-bench=ObsPinned in internal/obs) runs the same cross-socket URPC
//     exchange with no plane, a disabled plane and a live sampling plane.
//     All three simcycles/op values are pinned, and base vs disabled are
//     additionally required to be EQUAL — a disabled plane must charge zero
//     virtual time — while the sampling variant's simevents/window pin
//     catches wire-protocol or aggregation-tree changes that inflate the
//     plane's own traffic.
//
// Usage:
//
//	go run ./ci/traceguard            # check against the baseline
//	go run ./ci/traceguard -update    # re-measure and rewrite the baseline
//
// -tolerance (default 0.05 per the tracing-overhead budget) applies only to
// the host-time half and can be widened on heterogeneous runners; -update
// refreshes the file after intentional engine or transport changes.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

const baselineFile = "ci/trace_overhead_baseline.txt"

func main() {
	update := flag.Bool("update", false, "rewrite the baseline from fresh measurements")
	tolerance := flag.Float64("tolerance", 0.05, "allowed fractional regression over the baseline")
	count := flag.Int("count", 5, "benchmark repetitions (minimum taken)")
	benchtime := flag.String("benchtime", "0.3s", "per-repetition benchmark time")
	flag.Parse()

	measured, err := runBenchmarks(*count, *benchtime)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceguard: %v\n", err)
		os.Exit(1)
	}
	if len(measured) == 0 {
		fmt.Fprintln(os.Stderr, "traceguard: no TraceOff benchmarks found")
		os.Exit(1)
	}
	simMeasured, err := runSimBenchmarks()
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceguard: %v\n", err)
		os.Exit(1)
	}
	if len(simMeasured) == 0 {
		fmt.Fprintln(os.Stderr, "traceguard: no deterministic sim benchmarks found")
		os.Exit(1)
	}

	if *update {
		all := map[string]float64{}
		for k, v := range measured {
			all[k] = v
		}
		for k, v := range simMeasured {
			all[k] = v
		}
		if err := writeBaseline(all); err != nil {
			fmt.Fprintf(os.Stderr, "traceguard: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("baseline %s updated:\n", baselineFile)
		for _, name := range sortedKeys(all) {
			fmt.Printf("  %-42s %10.2f\n", name, all[name])
		}
		return
	}

	baseline, err := readBaseline()
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceguard: %v (run with -update to create it)\n", err)
		os.Exit(1)
	}
	failed := false
	for _, name := range sortedKeys(measured) {
		got := measured[name]
		want, ok := baseline[name]
		if !ok {
			fmt.Printf("NEW   %-42s %10.2f ns/op (no baseline; run -update)\n", name, got)
			failed = true
			continue
		}
		ratio := got / want
		status := "ok   "
		if ratio > 1+*tolerance {
			status = "SLOW "
			failed = true
		}
		fmt.Printf("%s %-42s %10.2f ns/op vs baseline %10.2f (%+.1f%%)\n",
			status, name, got, want, (ratio-1)*100)
	}
	// The simcycle metrics are deterministic: pin them exactly. An
	// improvement is not a failure, but the stale baseline is worth a nudge.
	for _, name := range sortedKeys(simMeasured) {
		got := simMeasured[name]
		want, ok := baseline[name]
		switch {
		case !ok:
			fmt.Printf("NEW   %-42s %10.2f (no baseline; run -update)\n", name, got)
			failed = true
		case got > want:
			fmt.Printf("SLOW  %-42s %10.2f vs baseline %10.2f\n", name, got, want)
			failed = true
		case got < want:
			fmt.Printf("FAST  %-42s %10.2f vs baseline %10.2f (run -update to lock in)\n", name, got, want)
		default:
			fmt.Printf("ok    %-42s %10.2f (exact)\n", name, got)
		}
	}
	// Sharper than the pins: a disabled observability plane must leave the
	// workload on the no-plane run's exact cycle, not merely under a ceiling.
	base, okB := simMeasured["BenchmarkObsPinned/base:simcycles/op"]
	dis, okD := simMeasured["BenchmarkObsPinned/disabled:simcycles/op"]
	if okB && okD && base != dis {
		fmt.Printf("COST  BenchmarkObsPinned: disabled plane not free (base %.2f vs disabled %.2f simcycles/op)\n",
			base, dis)
		failed = true
	}
	if failed {
		fmt.Fprintln(os.Stderr, "traceguard: cost contract violated (see lines above)")
		os.Exit(1)
	}
}

// runSimBenchmarks executes the deterministic benchmarks once — the URPC
// transport costs and the parallel-engine pinned workload at each worker
// count — and returns their simulated metrics keyed "BenchmarkName:unit".
// The engine benchmark doubles as a determinism gate: the w1/w2/w4
// sub-benchmarks replay the same pinned virtual-time window, so their
// simevents/op entries must stay equal to each other as well as to the
// baseline.
func runSimBenchmarks() (map[string]float64, error) {
	got := map[string]float64{}
	for _, run := range []struct{ bench, pkg string }{
		{"URPCPipelined|BulkTransfer", "./internal/urpc/"},
		{"ParallelEnginePinned", "./internal/sim/"},
		{"BootParallelPinned|DirectoryPinned", "./internal/expt/"},
		{"ObsPinned", "./internal/obs/"},
	} {
		cmd := exec.Command("go", "test", "-run=NONE",
			"-bench="+run.bench, "-benchtime=1x", run.pkg)
		out, err := cmd.CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("%s benchmark run failed: %v\n%s", run.pkg, err, out)
		}
		sc := bufio.NewScanner(strings.NewReader(string(out)))
		for sc.Scan() {
			// "BenchmarkURPCPipelined   1   1142308 ns/op   204.7 simcycles/msg"
			// "BenchmarkParallelEnginePinned/w2   1   51 ms/op   121804 simevents/op"
			fields := strings.Fields(sc.Text())
			if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
				continue
			}
			name := strings.TrimSuffix(fields[0], "-"+lastCPUSuffix(fields[0]))
			for i := 3; i < len(fields); i++ {
				if !strings.HasPrefix(fields[i], "simcycles/") &&
					!strings.HasPrefix(fields[i], "simevents/") {
					continue
				}
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					continue
				}
				got[name+":"+fields[i]] = v
			}
		}
	}
	return got, nil
}

// runBenchmarks executes the TraceOff benchmarks and returns the minimum
// ns/op observed per benchmark name.
func runBenchmarks(count int, benchtime string) (map[string]float64, error) {
	cmd := exec.Command("go", "test", "-run=NONE", "-bench=TraceOff",
		"-count="+strconv.Itoa(count), "-benchtime="+benchtime, "./internal/sim/")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("benchmark run failed: %v\n%s", err, out)
	}
	min := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	for sc.Scan() {
		// "BenchmarkTraceOffWake   258276   799.1 ns/op   0 B/op   0 allocs/op"
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || fields[3] != "ns/op" {
			continue
		}
		name := strings.TrimSuffix(fields[0], "-"+lastCPUSuffix(fields[0]))
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		if cur, ok := min[name]; !ok || ns < cur {
			min[name] = ns
		}
	}
	return min, nil
}

// lastCPUSuffix returns the trailing GOMAXPROCS suffix of a benchmark name
// ("8" in "BenchmarkFoo-8"), or "" when absent.
func lastCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i+1:]
}

func readBaseline() (map[string]float64, error) {
	data, err := os.ReadFile(baselineFile)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s: malformed line %q", baselineFile, line)
		}
		ns, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", baselineFile, err)
		}
		out[fields[0]] = ns
	}
	return out, nil
}

func writeBaseline(m map[string]float64) error {
	var b strings.Builder
	b.WriteString("# Cost baselines enforced by ci/traceguard (-update rewrites).\n")
	b.WriteString("# Plain keys: minimum ns/op of the tracing-off benchmarks; CI fails\n")
	b.WriteString("# when a measurement exceeds its line by more than -tolerance.\n")
	b.WriteString("# \":unit\" keys: deterministic simulated metrics (URPC v2 transport\n")
	b.WriteString("# costs; parallel-engine pinned event counts, which must also match\n")
	b.WriteString("# across worker counts), pinned exactly — any increase fails CI.\n")
	for _, name := range sortedKeys(m) {
		fmt.Fprintf(&b, "%s %.2f\n", name, m[name])
	}
	return os.WriteFile(baselineFile, []byte(b.String()), 0o644)
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
