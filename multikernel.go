// Package multikernel is a library-level reproduction of "The Multikernel:
// A new OS architecture for scalable multicore systems" (Baumann et al.,
// SOSP 2009) — the Barrelfish operating system — built over a deterministic
// discrete-event simulation of cache-coherent multicore hardware.
//
// The package is a thin facade over the implementation packages:
//
//   - internal/sim: deterministic virtual-time engine
//   - internal/topo, interconnect, memory, cache: the hardware models
//   - internal/kernel, urpc, caps, vm, monitor, skb, threads: the multikernel
//   - internal/baseline: the monolithic shared-memory comparator OS
//   - internal/netstack, apps: device models and workloads
//   - internal/expt: the harness regenerating every table and figure of the
//     paper's evaluation
//
// Quick start:
//
//	e := multikernel.NewEngine(1)
//	sys := multikernel.Boot(e, multikernel.AMD4x4())
//	e.Spawn("init", func(p *sim.Proc) {
//	    d, _ := sys.NewDomain(p, "app", sys.AllCores())
//	    ...
//	})
//	e.Run()
package multikernel

import (
	"multikernel/internal/core"
	"multikernel/internal/monitor"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

// System is a booted multikernel instance. See internal/core for the full
// API: domains, virtual memory, globally-agreed capability operations.
type System = core.System

// Domain is a process spanning several cores with a shared address space.
type Domain = core.Domain

// Machine describes a simulated multiprocessor.
type Machine = topo.Machine

// Protocol selects a dissemination protocol for coordinated operations.
type Protocol = monitor.Protocol

// Dissemination protocols (paper §5.1).
const (
	Unicast   = monitor.Unicast
	Multicast = monitor.Multicast
	NUMAAware = monitor.NUMAAware
)

// NewEngine returns a deterministic simulation engine with the given seed.
func NewEngine(seed uint64) *sim.Engine { return sim.NewEngine(seed) }

// Boot brings up a multikernel on machine m: one CPU driver and monitor per
// core, the URPC mesh, the system knowledge base and per-core capability
// spaces.
func Boot(e *sim.Engine, m *Machine) *System { return core.Boot(e, m) }

// BootOnWorkers boots the multikernel on a single-partition ParallelEngine
// with the given host-worker budget — the engine-selection knob behind the
// tools' -workers flags. The machine stays one partition, so driver-style
// programs keep working unchanged (any proc may touch any core, exactly as
// under Boot) while the run goes through the parallel engine's epoch
// machinery and worker pool; the schedule is byte-identical to the serial
// reference at every worker count. Spawn procs on the returned engine's
// Part(0) and drive it with Run/RunUntil/Close on the ParallelEngine itself.
// Multi-partition boots — one full replica per socket, with procs confined
// to the replica owning their core — use core.BootParallel directly.
func BootOnWorkers(m *Machine, seed uint64, workers int) (*sim.ParallelEngine, *System) {
	pe := sim.NewParallelEngine(1, sim.Forever, seed, workers)
	ps := core.BootParallel(pe, m, core.Options{})
	return pe, ps.Part(0)
}

// The paper's four test platforms (§4.1).
var (
	Intel2x4 = topo.Intel2x4
	AMD2x2   = topo.AMD2x2
	AMD4x4   = topo.AMD4x4
	AMD8x4   = topo.AMD8x4
)

// Mesh builds a synthetic scalable machine: an nx×ny socket grid with the
// paper-machine cost model.
func Mesh(nx, ny, coresPerSocket int) *Machine { return topo.MeshXY(nx, ny, coresPerSocket) }

// The scaled 64–1024-core machines: k×k meshes and tori with XY routing and
// mode-dependent coherence costs, and clustered hierarchies with slower
// uplinks. These are the platforms of the broadcast-vs-directory sweeps.
var (
	ScaledMesh  = topo.Mesh
	ScaledTorus = topo.Torus
	Hier        = topo.Hier
)

// AllMachines returns the paper's four test platforms.
func AllMachines() []*Machine { return topo.AllMachines() }

// AllCores lists every core of a machine, the common argument to NewDomain
// and coordinated operations.
func AllCores(m *Machine) []topo.CoreID {
	out := make([]topo.CoreID, m.NumCores())
	for i := range out {
		out[i] = topo.CoreID(i)
	}
	return out
}
