module multikernel

go 1.24
