// Command mksim boots a multikernel on a simulated machine, runs a small
// demonstration workload (a domain spanning all cores performing mapped
// memory accesses, a coordinated unmap and a globally-agreed retype) and
// prints a boot/activity report.
//
// Usage:
//
//	mksim [-machine "4x4-core AMD"] [-workers n] [-trace] [-trace-json out.json]
//	      [-checkpoint boot.ckpt | -restore boot.ckpt]
//
// -checkpoint runs the boot to quiescence, saves the engine image to the
// named file and continues with the demo. -restore skips the simulated boot:
// the engine state is loaded from a previously saved image (which must have
// been taken on the same -machine) and only the demo workload is simulated.
//
// -workers boots on the parallel engine with that many host workers instead
// of the serial reference engine. The demo's output — every printed virtual
// timestamp included — is byte-identical at every worker count; results are
// never a function of the worker budget.
package main

import (
	"flag"
	"fmt"
	"os"

	"multikernel"
	"multikernel/internal/caps"
	"multikernel/internal/core"
	"multikernel/internal/monitor"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/trace"
	"multikernel/internal/vm"
)

func main() {
	machine := flag.String("machine", "4x4-core AMD", "one of the paper's test platforms")
	dumpTrace := flag.Bool("trace", false, "print the structured event trace after the run")
	traceJSON := flag.String("trace-json", "", "write the trace as Chrome trace-event JSON (open in Perfetto)")
	ckptOut := flag.String("checkpoint", "", "save the booted engine image to this file before the demo")
	ckptIn := flag.String("restore", "", "warm-start from a saved boot image instead of simulating boot")
	workers := flag.Int("workers", 0, "boot on the parallel engine with this many host workers (0 = serial reference engine)")
	flag.Parse()

	if *ckptOut != "" && *ckptIn != "" {
		fmt.Fprintln(os.Stderr, "mksim: -checkpoint and -restore are mutually exclusive")
		os.Exit(2)
	}
	if *workers > 0 && (*ckptOut != "" || *ckptIn != "") {
		// Serial and parallel checkpoint images use different framings;
		// core.RestoreParallel handles the latter.
		fmt.Fprintln(os.Stderr, "mksim: -checkpoint/-restore operate on serial engine images; drop -workers")
		os.Exit(2)
	}

	m := topo.ByName(*machine)
	if m == nil {
		fmt.Fprintf(os.Stderr, "unknown machine %q; known machines:\n", *machine)
		for _, k := range topo.AllMachines() {
			fmt.Fprintf(os.Stderr, "  %s\n", k.Name)
		}
		os.Exit(2)
	}

	var rec *trace.Recorder
	if *dumpTrace || *traceJSON != "" {
		rec = trace.NewRecorder()
	}

	var e *sim.Engine
	var sys *multikernel.System
	run, closeEng := func() { e.Run() }, func() { e.Close() }
	if *workers > 0 {
		// Single partition: the driver proc below touches every core, which
		// is only legal in the replica that owns them all. The epoch loop and
		// worker pool still carry the whole run.
		pe := sim.NewParallelEngine(1, sim.Forever, 1, *workers)
		e = pe.Part(0)
		if rec != nil {
			e.SetTracer(rec)
		}
		sys = core.BootParallel(pe, m, core.Options{}).Part(0)
		run, closeEng = pe.Run, pe.Close
		fmt.Printf("booted multikernel on %v (parallel engine, %d workers)\n", m, *workers)
	} else if *ckptIn != "" {
		f, err := os.Open(*ckptIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mksim: %v\n", err)
			os.Exit(1)
		}
		e, err = sim.Restore(f, func(e *sim.Engine) {
			if rec != nil {
				e.SetTracer(rec)
			}
			sys = multikernel.Boot(e, m)
		})
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mksim: restoring %s (image must be from the same -machine): %v\n", *ckptIn, err)
			os.Exit(1)
		}
		fmt.Printf("restored multikernel boot image %s on %v (simulated boot skipped)\n", *ckptIn, m)
	} else {
		e = multikernel.NewEngine(1)
		if rec != nil {
			e.SetTracer(rec)
		}
		sys = multikernel.Boot(e, m)
		fmt.Printf("booted multikernel on %v\n", m)
		if *ckptOut != "" {
			e.Run() // boot to quiescence so the image is checkpointable
			f, err := os.Create(*ckptOut)
			if err == nil {
				err = e.Checkpoint(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "mksim: writing boot image: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("boot image saved to %s (restore with -restore %s -machine %q)\n",
				*ckptOut, *ckptOut, m.Name)
		}
	}
	fmt.Printf("  %s\n", sys.KB)

	e.Spawn("init", func(p *sim.Proc) {
		cores := multikernel.AllCores(m)
		d, err := sys.NewDomain(p, "demo", cores)
		if err != nil {
			panic(err)
		}
		va, err := d.MapAnon(p, 0, 4*vm.PageSize, vm.Read|vm.Write)
		if err != nil {
			panic(err)
		}
		fmt.Printf("t=%-10d domain %q mapped 16KiB at va %#x\n", p.Now(), d.Name, uint64(va))

		for _, c := range cores {
			if _, err := d.Space.Access(p, c, va+vm.VAddr(8*int(c)), true, uint64(c)); err != nil {
				panic(err)
			}
		}
		fmt.Printf("t=%-10d all %d cores wrote through the shared address space\n", p.Now(), len(cores))

		start := p.Now()
		if err := d.Unmap(p, 0, va, vm.PageSize, monitor.NUMAAware); err != nil {
			panic(err)
		}
		fmt.Printf("t=%-10d coordinated unmap of one page took %d cycles (%0.f ns)\n",
			p.Now(), p.Now()-start, m.Nanoseconds(p.Now()-start))
		sys.VM.CheckNoStaleTLB(d.Space.ID, va, vm.PageSize)
		fmt.Println("             no stale TLB entries anywhere: shootdown verified")

		reg := sys.Mem.Alloc(4096, 0)
		start = p.Now()
		ok := sys.GlobalRetype(p, 0, reg.Base, reg.Bytes, caps.Frame, 0)
		fmt.Printf("t=%-10d global retype (2PC across %d cores): committed=%v in %d cycles\n",
			p.Now(), len(cores), ok, p.Now()-start)
		if err := sys.CheckCapConsistency(); err != nil {
			panic(err)
		}
		fmt.Println("             capability replicas consistent on all cores")
	})
	run()

	fmt.Println("\nper-monitor activity:")
	for _, c := range multikernel.AllCores(m)[:4] {
		st := sys.Net.Monitor(c).Stats()
		fmt.Printf("  monitor%-2d handled=%d initiated=%d commits=%d\n", c, st.Handled, st.Initiated, st.Commits)
	}
	fmt.Printf("interconnect traffic: %d dwords total\n", sys.Fabric.TotalDwords())
	if *dumpTrace {
		fmt.Printf("\nstructured trace (%d events):\n%s", rec.Len(), rec.TextDump())
	}
	if *traceJSON != "" {
		f, err := os.Create(*traceJSON)
		if err == nil {
			err = trace.WriteJSON(f, rec)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *traceJSON, err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (%d events)\n", *traceJSON, rec.Len())
	}
	closeEng()
}
