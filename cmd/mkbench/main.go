// Command mkbench regenerates the tables and figures of the paper's
// evaluation on the simulated machines and prints them in the paper's
// layout.
//
// Usage:
//
//	mkbench [-quick] [-parallel N] [-json file] [-fault-seed N] [experiment ...]
//
// Experiments: fig3 tab1 tab2 tab3 fig6 fig7 fig8 tab4 fig9 sec54 poll
// ablations extensions faults, or "all" (the default).
//
// The faults experiment drives coordinated operations through seeded fault
// schedules (fail-stop cores, degraded links, cache stalls) with monitor
// fault tolerance enabled, reporting recovery latency and degraded-mode
// throughput against the fault rate; -fault-seed selects the schedule
// family.
//
// Independent experiment points run across a pool of -parallel worker
// threads (default GOMAXPROCS); output is byte-identical to -parallel 1
// because every point is a hermetic, seed-deterministic engine run and
// results are collected in deterministic order.
//
// With -json, headline metrics (the last point of every figure series, per-
// experiment and total wall-clock seconds, and the parallelism used) are
// written to the named file as one flat JSON object, so successive runs can
// be diffed to track the performance trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"multikernel/internal/expt"
	"multikernel/internal/harness"
	"multikernel/internal/sim"
	"multikernel/internal/stats"
)

func main() {
	quick := flag.Bool("quick", false, "run shortened parameter sweeps")
	plot := flag.Bool("plot", true, "render ASCII plots for figures")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"number of experiment points to run concurrently (1 = serial)")
	jsonOut := flag.String("json", "", "write headline metrics to this file as a flat JSON object")
	faultSeed := flag.Uint64("fault-seed", 42, "seed family for the faults experiment's schedules")
	faultsOnly := flag.Bool("faults", false, "shorthand for the faults experiment")
	flag.Parse()

	harness.SetParallelism(*parallel)

	iters := 10
	webWindow := sim.Time(40_000_000)
	packets := 400
	fig9Scale := 1.0
	if *quick {
		iters = 3
		webWindow = 10_000_000
		packets = 120
		fig9Scale = 0.25
	}

	pw, ph := 0, 0
	if *plot {
		pw, ph = 72, 18
	}

	metrics := map[string]float64{}
	// figMetrics records the last point of every series of f under keys
	// "<expt>.<series>@<x>" — the headline scaling numbers.
	figMetrics := func(name string, f *stats.Figure) {
		for _, s := range f.Series {
			if len(s.Points) == 0 {
				continue
			}
			last := s.Points[len(s.Points)-1]
			metrics[fmt.Sprintf("%s.%s@%g", name, s.Name, last.X)] = last.Y
		}
	}
	showFig := func(name string, f *stats.Figure) {
		figMetrics(name, f)
		fmt.Println(stats.RenderFigure(f, pw, ph))
	}
	showTab := func(t *stats.Table) {
		fmt.Println(t.Render())
	}

	experiments := []struct {
		name string
		run  func()
	}{
		{"fig3", func() { showFig("fig3", expt.Fig3(iters)) }},
		{"tab1", func() { showTab(expt.Table1(24)) }},
		{"tab2", func() { showTab(expt.Table2(iters)) }},
		{"tab3", func() { showTab(expt.Table3(iters)) }},
		{"fig6", func() { showFig("fig6", expt.Fig6(iters)) }},
		{"fig7", func() { showFig("fig7", expt.Fig7(max(2, iters/2))) }},
		{"fig8", func() { showFig("fig8", expt.Fig8(max(2, iters/2))) }},
		{"tab4", func() { showTab(expt.Table4()) }},
		{"fig9", func() {
			for _, f := range expt.Fig9(fig9Scale) {
				showFig("fig9", f)
			}
		}},
		{"sec54", func() { showTab(expt.Sec54(packets, webWindow)) }},
		{"poll", func() { showTab(expt.PollModel(6000)) }},
		{"ablations", func() {
			showTab(expt.AblationPrefetch(iters))
			showTab(expt.AblationShootdownProtocols(max(2, iters/2)))
			showTab(expt.AblationPipelineDepth(max(2, iters/2)))
			showTab(expt.AblationPollWindow())
		}},
		{"extensions", func() {
			showFig("ext-scale", expt.ExtScaling(max(2, iters/2)))
			showTab(expt.ExtSharedReplica(max(2, iters/2)))
			showTab(expt.ExtRunQueue(40))
		}},
		{"faults", func() {
			lat, thr := expt.FaultRecovery(*faultSeed, 2*iters)
			showFig("faults-latency", lat)
			showFig("faults-throughput", thr)
		}},
	}

	wants := flag.Args()
	if *faultsOnly {
		wants = append(wants, "faults")
	}
	if len(wants) == 0 {
		wants = []string{"all"}
	}
	known := func(name string) bool {
		for _, ex := range experiments {
			if ex.name == name {
				return true
			}
		}
		return name == "all"
	}
	for _, w := range wants {
		if !known(w) {
			var names []string
			for _, ex := range experiments {
				names = append(names, ex.name)
			}
			fmt.Fprintf(os.Stderr, "unknown experiment %q; choose from: %s all\n",
				w, strings.Join(names, " "))
			os.Exit(2)
		}
	}
	want := func(name string) bool {
		for _, w := range wants {
			if w == name || w == "all" {
				return true
			}
		}
		return false
	}

	start := time.Now()
	for _, ex := range experiments {
		if !want(ex.name) {
			continue
		}
		t0 := time.Now()
		ex.run()
		metrics["wall_seconds."+ex.name] = round3(time.Since(t0).Seconds())
	}

	if *jsonOut != "" {
		metrics["wall_seconds_total"] = round3(time.Since(start).Seconds())
		metrics["parallel"] = float64(harness.Parallelism())
		buf, err := json.MarshalIndent(metrics, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkbench: encoding metrics: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mkbench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
	}
}

func round3(s float64) float64 { return float64(int64(s*1000+0.5)) / 1000 }
