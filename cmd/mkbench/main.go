// Command mkbench regenerates the tables and figures of the paper's
// evaluation on the simulated machines and prints them in the paper's
// layout.
//
// Usage:
//
//	mkbench [-quick] [experiment ...]
//
// Experiments: fig3 tab1 tab2 tab3 fig6 fig7 fig8 tab4 fig9 sec54 poll
// ablations, or "all" (the default).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"multikernel/internal/expt"
	"multikernel/internal/sim"
	"multikernel/internal/stats"
)

func main() {
	quick := flag.Bool("quick", false, "run shortened parameter sweeps")
	plot := flag.Bool("plot", true, "render ASCII plots for figures")
	flag.Parse()

	iters := 10
	webWindow := sim.Time(40_000_000)
	packets := 400
	fig9Scale := 1.0
	if *quick {
		iters = 3
		webWindow = 10_000_000
		packets = 120
		fig9Scale = 0.25
	}

	wants := flag.Args()
	if len(wants) == 0 {
		wants = []string{"all"}
	}
	want := func(name string) bool {
		for _, w := range wants {
			if w == name || w == "all" {
				return true
			}
		}
		return false
	}

	pw, ph := 0, 0
	if *plot {
		pw, ph = 72, 18
	}
	showFig := func(f *stats.Figure) {
		fmt.Println(stats.RenderFigure(f, pw, ph))
	}
	showTab := func(t *stats.Table) {
		fmt.Println(t.Render())
	}

	ran := 0
	if want("fig3") {
		showFig(expt.Fig3(iters))
		ran++
	}
	if want("tab1") {
		showTab(expt.Table1(24))
		ran++
	}
	if want("tab2") {
		showTab(expt.Table2(iters))
		ran++
	}
	if want("tab3") {
		showTab(expt.Table3(iters))
		ran++
	}
	if want("fig6") {
		showFig(expt.Fig6(iters))
		ran++
	}
	if want("fig7") {
		showFig(expt.Fig7(max(2, iters/2)))
		ran++
	}
	if want("fig8") {
		showFig(expt.Fig8(max(2, iters/2)))
		ran++
	}
	if want("tab4") {
		showTab(expt.Table4())
		ran++
	}
	if want("fig9") {
		for _, f := range expt.Fig9(fig9Scale) {
			showFig(f)
		}
		ran++
	}
	if want("sec54") {
		showTab(expt.Sec54(packets, webWindow))
		ran++
	}
	if want("poll") {
		showTab(expt.PollModel(6000))
		ran++
	}
	if want("ablations") {
		showTab(expt.AblationPrefetch(iters))
		showTab(expt.AblationShootdownProtocols(max(2, iters/2)))
		showTab(expt.AblationPipelineDepth(max(2, iters/2)))
		showTab(expt.AblationPollWindow())
		ran++
	}
	if want("extensions") {
		showFig(expt.ExtScaling(max(2, iters/2)))
		showTab(expt.ExtSharedReplica(max(2, iters/2)))
		showTab(expt.ExtRunQueue(40))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; choose from: fig3 tab1 tab2 tab3 fig6 fig7 fig8 tab4 fig9 sec54 poll ablations extensions all\n",
			strings.Join(wants, " "))
		os.Exit(2)
	}
}
