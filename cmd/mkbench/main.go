// Command mkbench regenerates the tables and figures of the paper's
// evaluation on the simulated machines and prints them in the paper's
// layout.
//
// Usage:
//
//	mkbench [-quick] [-parallel N] [-run-workers N] [-json file] [-trace file]
//	        [-checkpoint file] [-restore file] [-cpuprofile file] [-memprofile file]
//	        [-fault-seed N] [experiment ...]
//
// Experiments: fig3 tab1 tab2 tab3 fig6 fig7 fig8 tab4 fig9 sec54 poll
// ablations extensions faults kvfault obs coherence urpcv2 sim boot, or
// "all" (the default).
//
// The obs experiment re-runs the kvcluster fail-over scenario with the
// distributed observability plane (internal/obs) at a sweep of sampling
// intervals: client completion cycles with the plane absent, disabled
// (must match absent exactly) and live, the plane's message volume per
// committed window, exact counter fidelity, and the health monitor's
// kill-to-degraded-event latency against its documented bound.
//
// The coherence experiment measures the paper's §2.1 scalability argument
// on the scaled machine models: a read-mostly publishing workload swept
// across 16–1024-core meshes under broadcast-snoop and directory coherence,
// reporting mean RMW cycles, mean probe fan-out per mode (the directory's
// is bounded by the true sharer count, broadcast's by the socket count) and
// the core count where directory overtakes broadcast, with torus rows
// showing the diameter ablation at the largest sizes.
//
// The urpcv2 experiment sweeps the v2 transport: pipelined throughput
// against sender in-flight depth 1→16, the ring-vs-bulk crossover for
// payloads of 1→64 cache lines, and a Table 2-style per-hop cost table
// (stop-and-wait, fully pipelined, and bulk per-line) across all machines.
//
// The faults experiment drives coordinated operations through seeded fault
// schedules (fail-stop cores, degraded links, cache stalls) with monitor
// fault tolerance enabled, reporting recovery latency and degraded-mode
// throughput against the fault rate; -fault-seed selects the schedule
// family.
//
// The sim experiment benchmarks the engine itself: event throughput of the
// serial reference engine against per-socket sub-engines at 2/4/8 workers
// (plus -run-workers when it names another count), with byte-identity of the
// final engine image checked against the serial run, and a warm-start
// comparison of a boot-per-point sweep against a boot-once/restore-per-point
// sweep. -checkpoint saves that boot image to a file; -restore feeds a saved
// image back in, so a later run skips simulated boot entirely.
//
// The boot experiment puts the whole multikernel on the parallel engine:
// core.BootParallel on the 8x4-core AMD machine (one replica per socket),
// driven through shootdown-storm, web+database and replicated-kvcluster
// workloads at 1/2/4 workers, reporting wall-clock speedup and byte
// identity of traces, merged metrics and the parallel checkpoint image
// against the workers=1 run. The JSON records boot.runner_cores because
// speedup needs idle host cores; identity does not.
//
// Independent experiment points run across a pool of -parallel worker
// threads (default GOMAXPROCS); output is byte-identical to -parallel 1
// because every point is a hermetic, seed-deterministic engine run and
// results are collected in deterministic order. -run-workers additionally
// budgets intra-run engine workers per point (harness.SetRunWorkers) — the
// second axis of host parallelism, used by engine-parallel experiments.
//
// -cpuprofile and -memprofile write pprof profiles of the whole run.
//
// With -json, headline metrics (the last point of every figure series, per-
// experiment and total wall-clock seconds, and the parallelism used) are
// written to the named file as one JSON object; a "metrics" section carries
// each experiment's merged subsystem registry snapshot (URPC traffic, cache
// coherence counters, per-link interconnect dwords, monitor agreement stats,
// latency histograms), so successive runs can be diffed to track the
// performance trajectory.
//
// With -trace, every engine in the sweep records a structured event trace and
// the merged capture is written as Chrome trace-event JSON, loadable in
// Perfetto (or chrome://tracing): one process per experiment point, one
// thread per core, with flow arrows linking URPC sends to receives. The
// export is byte-identical at any -parallel setting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"multikernel/internal/expt"
	"multikernel/internal/harness"
	"multikernel/internal/metrics"
	"multikernel/internal/sim"
	"multikernel/internal/stats"
	"multikernel/internal/trace"
)

func main() {
	quick := flag.Bool("quick", false, "run shortened parameter sweeps")
	plot := flag.Bool("plot", true, "render ASCII plots for figures")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"number of experiment points to run concurrently (1 = serial)")
	jsonOut := flag.String("json", "", "write headline metrics to this file as a flat JSON object")
	traceOut := flag.String("trace", "", "write a Perfetto-loadable Chrome trace of every engine run to this file")
	faultSeed := flag.Uint64("fault-seed", 42, "seed family for the faults experiment's schedules")
	faultsOnly := flag.Bool("faults", false, "shorthand for the faults experiment")
	runWorkers := flag.Int("run-workers", 1,
		"intra-run engine worker budget per experiment point (1 = serial reference engine)")
	ckptOut := flag.String("checkpoint", "", "write the warm-start boot image to this file")
	ckptIn := flag.String("restore", "", "warm-start the sim experiment's sweep from this saved boot image")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	harness.SetParallelism(*parallel)
	harness.SetRunWorkers(*runWorkers)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mkbench: starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mkbench: %v\n", err)
				return
			}
			runtime.GC()
			err = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "mkbench: writing heap profile: %v\n", err)
			}
		}()
	}

	// The warm-start boot image: -checkpoint boots once and saves it,
	// -restore supplies one saved earlier; either way the sim experiment's
	// warm sweep starts from it instead of simulating boot.
	var bootImg []byte
	if *ckptOut != "" {
		bootImg = expt.BootImage(expt.WarmStartMachine())
		if err := os.WriteFile(*ckptOut, bootImg, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mkbench: writing boot image: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "boot image for %s (%d bytes) written to %s\n",
			expt.WarmStartMachine().Name, len(bootImg), *ckptOut)
	}
	if *ckptIn != "" {
		b, err := os.ReadFile(*ckptIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkbench: reading boot image: %v\n", err)
			os.Exit(1)
		}
		bootImg = b
	}

	iters := 10
	webWindow := sim.Time(40_000_000)
	packets := 400
	fig9Scale := 1.0
	simScale := 4000
	simPoints := 8
	bootScale := 24
	cohIncs, cohMaxCores := 6, 1024
	if *quick {
		iters = 3
		webWindow = 10_000_000
		packets = 120
		fig9Scale = 0.25
		simScale = 600
		simPoints = 4
		bootScale = 6
		cohIncs, cohMaxCores = 3, 256
	}

	pw, ph := 0, 0
	if *plot {
		pw, ph = 72, 18
	}

	headline := map[string]float64{}
	// figMetrics records the last point of every series of f under keys
	// "<expt>.<series>@<x>" — the headline scaling numbers.
	figMetrics := func(name string, f *stats.Figure) {
		for _, s := range f.Series {
			if len(s.Points) == 0 {
				continue
			}
			last := s.Points[len(s.Points)-1]
			headline[fmt.Sprintf("%s.%s@%g", name, s.Name, last.X)] = last.Y
		}
	}
	showFig := func(name string, f *stats.Figure) {
		figMetrics(name, f)
		fmt.Println(stats.RenderFigure(f, pw, ph))
	}
	showTab := func(t *stats.Table) {
		fmt.Println(t.Render())
	}

	experiments := []struct {
		name string
		run  func()
	}{
		{"fig3", func() { showFig("fig3", expt.Fig3(iters)) }},
		{"tab1", func() { showTab(expt.Table1(24)) }},
		{"tab2", func() { showTab(expt.Table2(iters)) }},
		{"tab3", func() { showTab(expt.Table3(iters)) }},
		{"fig6", func() { showFig("fig6", expt.Fig6(iters)) }},
		{"fig7", func() { showFig("fig7", expt.Fig7(max(2, iters/2))) }},
		{"fig8", func() { showFig("fig8", expt.Fig8(max(2, iters/2))) }},
		{"tab4", func() { showTab(expt.Table4()) }},
		{"fig9", func() {
			for _, f := range expt.Fig9(fig9Scale) {
				showFig("fig9", f)
			}
		}},
		{"sec54", func() { showTab(expt.Sec54(packets, webWindow)) }},
		{"poll", func() { showTab(expt.PollModel(6000)) }},
		{"ablations", func() {
			showTab(expt.AblationPrefetch(iters))
			showTab(expt.AblationShootdownProtocols(max(2, iters/2)))
			showTab(expt.AblationPipelineDepth(max(2, iters/2)))
			showTab(expt.AblationPollWindow())
		}},
		{"extensions", func() {
			showFig("ext-scale", expt.ExtScaling(max(2, iters/2)))
			showTab(expt.ExtSharedReplica(max(2, iters/2)))
			showTab(expt.ExtRunQueue(40))
		}},
		{"faults", func() {
			lat, thr := expt.FaultRecovery(*faultSeed, 2*iters)
			showFig("faults-latency", lat)
			showFig("faults-throughput", thr)
		}},
		{"kvfault", func() {
			lat, thr, tab := expt.KVFault(*faultSeed)
			showFig("kvfault-latency", lat)
			showFig("kvfault-throughput", thr)
			showTab(tab)
		}},
		{"obs", func() {
			res := expt.Obs(*faultSeed)
			showTab(res.Tab)
			headline["obs.zero_overhead_disabled"] = b2f(res.ZeroOverhead)
			headline["obs.sampling_client_delta_cycles"] = res.SamplingDelta
			headline["obs.fidelity_exact"] = b2f(res.FidelityExact)
			headline["obs.detect_cycles"] = res.DetectLat
			headline["obs.detect_bound_cycles"] = res.DetectBound
			headline["obs.detect_within_bound"] = b2f(res.WithinBound)
			headline["obs.windows"] = float64(res.Windows)
			headline["obs.msgs_per_window"] = round3(res.MsgsPerWindow)
			headline["obs.store_hash32"] = float64(res.StoreHash)
		}},
		{"coherence", func() {
			res := expt.Coherence(cohIncs, cohMaxCores)
			showFig("coherence", res.Fig)
			showTab(res.Tab)
			headline["coherence.crossover_cores"] = float64(res.Crossover)
			headline["coherence.broadcast_cycles"] = round3(res.BcastCycles)
			headline["coherence.directory_cycles"] = round3(res.DirCycles)
			headline["coherence.fanout_broadcast"] = round3(res.FanoutBcast)
			headline["coherence.fanout_directory"] = round3(res.FanoutDir)
			headline["coherence.sharer_bound"] = res.SharerBound
			headline["coherence.torus_gain"] = round3(res.TorusGain)
			headline["coherence.sums_ok"] = b2f(res.SumsOK)
		}},
		{"urpcv2", func() {
			showFig("urpcv2-depth", expt.URPCv2Depth(30*iters))
			showFig("urpcv2-size", expt.URPCv2Size(3*iters))
			showTab(expt.URPCv2Table(30 * iters))
		}},
		{"boot", func() {
			counts := []int{2, 4}
			if w := harness.RunWorkers(); w > 1 && w != 2 && w != 4 {
				counts = append(counts, w)
			}
			rows := expt.BootParallelBench(bootScale, counts)
			showTab(expt.BootBenchTable(rows))
			identical := true
			for _, r := range rows {
				key := fmt.Sprintf("boot.%s.w%d", r.Workload, r.Workers)
				headline[key+".seconds"] = round3(r.Seconds)
				headline[key+".speedup"] = round3(r.Speedup)
				headline[key+".sim_events"] = float64(r.SimEvents)
				identical = identical && r.Identical
			}
			headline["boot.identical"] = b2f(identical)
			// The honest caveat the speedup claim depends on: wall-clock gains
			// need as many idle host cores as workers; byte identity does not.
			headline["boot.runner_cores"] = float64(runtime.NumCPU())
		}},
		{"sim", func() {
			counts := []int{2, 4, 8}
			if w := harness.RunWorkers(); w > 1 && w != 2 && w != 4 && w != 8 {
				counts = append(counts, w)
			}
			res := expt.EngineBench(simScale, counts)
			showTab(expt.EngineBenchTable(res))
			identical := true
			for _, r := range res {
				headline[fmt.Sprintf("sim.events_per_sec.w%d", r.Workers)] = round3(r.EventsPerSec)
				headline[fmt.Sprintf("sim.speedup.w%d", r.Workers)] = round3(r.Speedup)
				identical = identical && r.Identical
			}
			headline["sim.events"] = float64(res[0].Events)
			headline["sim.identical"] = b2f(identical)

			wt, wres := expt.WarmStart(simPoints, bootImg)
			showTab(wt)
			headline["sim.cold_seconds"] = round3(wres.ColdSeconds)
			headline["sim.warm_seconds"] = round3(wres.WarmSeconds)
			headline["sim.boot_image_bytes"] = float64(wres.ImageBytes)
			headline["sim.warm_identical"] = b2f(wres.Identical)
		}},
	}

	wants := flag.Args()
	if *faultsOnly {
		wants = append(wants, "faults")
	}
	if len(wants) == 0 {
		wants = []string{"all"}
	}
	known := func(name string) bool {
		for _, ex := range experiments {
			if ex.name == name {
				return true
			}
		}
		return name == "all"
	}
	for _, w := range wants {
		if !known(w) {
			var names []string
			for _, ex := range experiments {
				names = append(names, ex.name)
			}
			fmt.Fprintf(os.Stderr, "unknown experiment %q; choose from: %s all\n",
				w, strings.Join(names, " "))
			os.Exit(2)
		}
	}
	want := func(name string) bool {
		for _, w := range wants {
			if w == name || w == "all" {
				return true
			}
		}
		return false
	}

	if *traceOut != "" {
		// Engines created inside the capture window attach recorders and
		// contribute their events at Close; the merged export below is
		// byte-identical at any -parallel setting.
		trace.StartCapture()
	}

	// Every experiment runs inside its own metrics capture window: engines
	// snapshot their registry (URPC, cache, interconnect, monitor, fault
	// counters and histograms) at Close, and the per-experiment merge lands
	// in the JSON output's "metrics" section.
	exptMetrics := map[string]metrics.Snapshot{}
	start := time.Now()
	for _, ex := range experiments {
		if !want(ex.name) {
			continue
		}
		t0 := time.Now()
		metrics.StartCapture()
		ex.run()
		exptMetrics[ex.name] = metrics.TakeCapture()
		headline["wall_seconds."+ex.name] = round3(time.Since(t0).Seconds())
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = trace.WriteCaptured(f)
		}
		trace.StopCapture()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkbench: writing trace %s: %v\n", *traceOut, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceOut)
	}

	if *jsonOut != "" {
		headline["wall_seconds_total"] = round3(time.Since(start).Seconds())
		headline["parallel"] = float64(harness.Parallelism())
		out := map[string]any{"metrics": exptMetrics}
		for k, v := range headline {
			out[k] = v
		}
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkbench: encoding metrics: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mkbench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
	}
}

func round3(s float64) float64 { return float64(int64(s*1000+0.5)) / 1000 }

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
