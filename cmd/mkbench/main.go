// Command mkbench regenerates the tables and figures of the paper's
// evaluation on the simulated machines and prints them in the paper's
// layout.
//
// Usage:
//
//	mkbench [-quick] [-parallel N] [-json file] [-trace file] [-fault-seed N] [experiment ...]
//
// Experiments: fig3 tab1 tab2 tab3 fig6 fig7 fig8 tab4 fig9 sec54 poll
// ablations extensions faults urpcv2, or "all" (the default).
//
// The urpcv2 experiment sweeps the v2 transport: pipelined throughput
// against sender in-flight depth 1→16, the ring-vs-bulk crossover for
// payloads of 1→64 cache lines, and a Table 2-style per-hop cost table
// (stop-and-wait, fully pipelined, and bulk per-line) across all machines.
//
// The faults experiment drives coordinated operations through seeded fault
// schedules (fail-stop cores, degraded links, cache stalls) with monitor
// fault tolerance enabled, reporting recovery latency and degraded-mode
// throughput against the fault rate; -fault-seed selects the schedule
// family.
//
// Independent experiment points run across a pool of -parallel worker
// threads (default GOMAXPROCS); output is byte-identical to -parallel 1
// because every point is a hermetic, seed-deterministic engine run and
// results are collected in deterministic order.
//
// With -json, headline metrics (the last point of every figure series, per-
// experiment and total wall-clock seconds, and the parallelism used) are
// written to the named file as one JSON object; a "metrics" section carries
// each experiment's merged subsystem registry snapshot (URPC traffic, cache
// coherence counters, per-link interconnect dwords, monitor agreement stats,
// latency histograms), so successive runs can be diffed to track the
// performance trajectory.
//
// With -trace, every engine in the sweep records a structured event trace and
// the merged capture is written as Chrome trace-event JSON, loadable in
// Perfetto (or chrome://tracing): one process per experiment point, one
// thread per core, with flow arrows linking URPC sends to receives. The
// export is byte-identical at any -parallel setting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"multikernel/internal/expt"
	"multikernel/internal/harness"
	"multikernel/internal/metrics"
	"multikernel/internal/sim"
	"multikernel/internal/stats"
	"multikernel/internal/trace"
)

func main() {
	quick := flag.Bool("quick", false, "run shortened parameter sweeps")
	plot := flag.Bool("plot", true, "render ASCII plots for figures")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"number of experiment points to run concurrently (1 = serial)")
	jsonOut := flag.String("json", "", "write headline metrics to this file as a flat JSON object")
	traceOut := flag.String("trace", "", "write a Perfetto-loadable Chrome trace of every engine run to this file")
	faultSeed := flag.Uint64("fault-seed", 42, "seed family for the faults experiment's schedules")
	faultsOnly := flag.Bool("faults", false, "shorthand for the faults experiment")
	flag.Parse()

	harness.SetParallelism(*parallel)

	iters := 10
	webWindow := sim.Time(40_000_000)
	packets := 400
	fig9Scale := 1.0
	if *quick {
		iters = 3
		webWindow = 10_000_000
		packets = 120
		fig9Scale = 0.25
	}

	pw, ph := 0, 0
	if *plot {
		pw, ph = 72, 18
	}

	headline := map[string]float64{}
	// figMetrics records the last point of every series of f under keys
	// "<expt>.<series>@<x>" — the headline scaling numbers.
	figMetrics := func(name string, f *stats.Figure) {
		for _, s := range f.Series {
			if len(s.Points) == 0 {
				continue
			}
			last := s.Points[len(s.Points)-1]
			headline[fmt.Sprintf("%s.%s@%g", name, s.Name, last.X)] = last.Y
		}
	}
	showFig := func(name string, f *stats.Figure) {
		figMetrics(name, f)
		fmt.Println(stats.RenderFigure(f, pw, ph))
	}
	showTab := func(t *stats.Table) {
		fmt.Println(t.Render())
	}

	experiments := []struct {
		name string
		run  func()
	}{
		{"fig3", func() { showFig("fig3", expt.Fig3(iters)) }},
		{"tab1", func() { showTab(expt.Table1(24)) }},
		{"tab2", func() { showTab(expt.Table2(iters)) }},
		{"tab3", func() { showTab(expt.Table3(iters)) }},
		{"fig6", func() { showFig("fig6", expt.Fig6(iters)) }},
		{"fig7", func() { showFig("fig7", expt.Fig7(max(2, iters/2))) }},
		{"fig8", func() { showFig("fig8", expt.Fig8(max(2, iters/2))) }},
		{"tab4", func() { showTab(expt.Table4()) }},
		{"fig9", func() {
			for _, f := range expt.Fig9(fig9Scale) {
				showFig("fig9", f)
			}
		}},
		{"sec54", func() { showTab(expt.Sec54(packets, webWindow)) }},
		{"poll", func() { showTab(expt.PollModel(6000)) }},
		{"ablations", func() {
			showTab(expt.AblationPrefetch(iters))
			showTab(expt.AblationShootdownProtocols(max(2, iters/2)))
			showTab(expt.AblationPipelineDepth(max(2, iters/2)))
			showTab(expt.AblationPollWindow())
		}},
		{"extensions", func() {
			showFig("ext-scale", expt.ExtScaling(max(2, iters/2)))
			showTab(expt.ExtSharedReplica(max(2, iters/2)))
			showTab(expt.ExtRunQueue(40))
		}},
		{"faults", func() {
			lat, thr := expt.FaultRecovery(*faultSeed, 2*iters)
			showFig("faults-latency", lat)
			showFig("faults-throughput", thr)
		}},
		{"urpcv2", func() {
			showFig("urpcv2-depth", expt.URPCv2Depth(30*iters))
			showFig("urpcv2-size", expt.URPCv2Size(3*iters))
			showTab(expt.URPCv2Table(30 * iters))
		}},
	}

	wants := flag.Args()
	if *faultsOnly {
		wants = append(wants, "faults")
	}
	if len(wants) == 0 {
		wants = []string{"all"}
	}
	known := func(name string) bool {
		for _, ex := range experiments {
			if ex.name == name {
				return true
			}
		}
		return name == "all"
	}
	for _, w := range wants {
		if !known(w) {
			var names []string
			for _, ex := range experiments {
				names = append(names, ex.name)
			}
			fmt.Fprintf(os.Stderr, "unknown experiment %q; choose from: %s all\n",
				w, strings.Join(names, " "))
			os.Exit(2)
		}
	}
	want := func(name string) bool {
		for _, w := range wants {
			if w == name || w == "all" {
				return true
			}
		}
		return false
	}

	if *traceOut != "" {
		// Engines created inside the capture window attach recorders and
		// contribute their events at Close; the merged export below is
		// byte-identical at any -parallel setting.
		trace.StartCapture()
	}

	// Every experiment runs inside its own metrics capture window: engines
	// snapshot their registry (URPC, cache, interconnect, monitor, fault
	// counters and histograms) at Close, and the per-experiment merge lands
	// in the JSON output's "metrics" section.
	exptMetrics := map[string]metrics.Snapshot{}
	start := time.Now()
	for _, ex := range experiments {
		if !want(ex.name) {
			continue
		}
		t0 := time.Now()
		metrics.StartCapture()
		ex.run()
		exptMetrics[ex.name] = metrics.TakeCapture()
		headline["wall_seconds."+ex.name] = round3(time.Since(t0).Seconds())
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = trace.WriteCaptured(f)
		}
		trace.StopCapture()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkbench: writing trace %s: %v\n", *traceOut, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceOut)
	}

	if *jsonOut != "" {
		headline["wall_seconds_total"] = round3(time.Since(start).Seconds())
		headline["parallel"] = float64(harness.Parallelism())
		out := map[string]any{"metrics": exptMetrics}
		for k, v := range headline {
			out[k] = v
		}
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkbench: encoding metrics: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mkbench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
	}
}

func round3(s float64) float64 { return float64(int64(s*1000+0.5)) / 1000 }
