// Command mkstat exercises the distributed observability plane end to end
// and renders what it collected. It boots the kvcluster fail-over scenario
// on the 4×4-core AMD machine (the same workload as mkbench obs), runs the
// per-core stat samplers at -interval cycles through the SKB-derived
// aggregation tree, kills one server mid-run, and then prints the committed
// cluster-wide time-series store.
//
// Output modes:
//
//	(default)        aligned table of every committed series (-prefix filters)
//	-json file       the store's deterministic JSON export (byte-identical
//	                 across runs: the artifact CI hashes)
//	-perfetto file   Chrome trace-event JSON of the series as Perfetto
//	                 counter tracks, plus the health monitor's
//	                 degraded/recovered instants on the engine timeline
//
// The health monitor runs throughout; its shard degraded/recovered events
// are printed to stderr with their virtual-time stamps and checked against
// the documented detection bound.
package main

import (
	"flag"
	"fmt"
	"os"

	"multikernel/internal/apps"
	"multikernel/internal/cache"
	"multikernel/internal/interconnect"
	"multikernel/internal/kernel"
	"multikernel/internal/memory"
	"multikernel/internal/monitor"
	"multikernel/internal/obs"
	"multikernel/internal/sim"
	"multikernel/internal/skb"
	"multikernel/internal/topo"
	"multikernel/internal/trace"
)

func main() {
	interval := flag.Uint64("interval", 200_000, "sampling interval in cycles")
	horizon := flag.Uint64("horizon", 12_000_000, "virtual run length in cycles")
	killAt := flag.Uint64("kill", 2_000_000, "fail-stop one kv server at this cycle (0 = no kill)")
	seed := flag.Uint64("seed", 42, "engine and client seed")
	prefix := flag.String("prefix", "", "only series with this name prefix")
	jsonOut := flag.String("json", "", "write the store's JSON export to this file")
	perfettoOut := flag.String("perfetto", "", "write Perfetto counter tracks to this file")
	flag.Parse()

	if *interval == 0 {
		fmt.Fprintln(os.Stderr, "mkstat: -interval must be > 0")
		os.Exit(2)
	}

	m := topo.AMD4x4()
	e := sim.NewEngine(*seed)
	defer e.Close()
	sys := cache.New(e, m, memory.New(m), interconnect.New(m))
	kern := kernel.NewSystem(e, m)
	kb := skb.New(m)
	kb.Discover()
	kb.Measure(func(a, b topo.CoreID) sim.Time { return 2*m.TransferLat(b, a) + 160 })
	e.SetTracer(trace.NewRing(1 << 16))

	net := monitor.NewNetwork(e, sys, kern, kb, monitor.Hooks{})
	net.EnableFaultTolerance(100_000)
	cluster := apps.NewKVCluster(e, sys, net, apps.ClusterConfig{
		Rows:    16,
		Servers: []topo.CoreID{2, 3, 6},
		Spares:  []topo.CoreID{8, 12},
	})
	cluster.StartFailureDetector(net, 0, 400_000)

	pl := obs.NewPlane(e, sys, kb, obs.Config{
		Interval: sim.Time(*interval), Seed: *seed, Publish: true,
	})
	health := pl.EnableHealth(obs.HealthConfig{ReplicaTarget: 2})
	pl.Start()

	for ci, core := range []topo.CoreID{1, 5, 10} {
		cl := cluster.Connect(core)
		rng := sim.NewRNG(*seed ^ uint64(ci)*0x9e37_79b9_7f4a_7c15)
		e.Spawn(fmt.Sprintf("drv%d", ci), func(p *sim.Proc) {
			p.SetDaemon(true)
			for i := 0; ; i++ {
				key := uint64(rng.Intn(16))
				if rng.Uint64()%2 == 0 {
					cl.Put(p, key, uint64(i))
				} else {
					cl.Get(p, key)
				}
				p.Sleep(30_000)
			}
		})
	}
	if *killAt > 0 {
		e.After(sim.Time(*killAt), func() {
			victim := cluster.Primary(0)
			fmt.Fprintf(os.Stderr, "killing core %d (primary of shard 0) at cycle %d\n", victim, e.Now())
			cluster.KillCore(victim)
			net.FailStop(victim)
			pl.FailStop(victim)
		})
	}
	e.RunUntil(sim.Time(*horizon))

	for _, ev := range health.Events() {
		fmt.Fprintf(os.Stderr, "health: shard %d %s at cycle %d (replicas %d)\n",
			ev.Shard, ev.Kind, ev.At, ev.Replicas)
	}

	st := pl.Store()
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err == nil {
			err = st.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkstat: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "store JSON written to %s\n", *jsonOut)
	}
	if *perfettoOut != "" {
		f, err := os.Create(*perfettoOut)
		if err == nil {
			err = trace.WriteJSONCounters(f, st.CounterTracks(*prefix)...)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkstat: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "Perfetto counter tracks written to %s\n", *perfettoOut)
	}
	if *jsonOut == "" && *perfettoOut == "" {
		fmt.Printf("committed windows: %d   obs msgs: %d   pairs: %d   late: %d\n\n",
			e.Metrics().Counter("obs.windows").Value(),
			e.Metrics().Counter("obs.msgs").Value(),
			e.Metrics().Counter("obs.pairs").Value(),
			e.Metrics().Counter("obs.late").Value())
		fmt.Print(st.Render(*prefix))
	}
}
