// Command mkcheck runs the schedule-exploration model checker: each seed
// re-runs the workloads under seeded perturbations of the simulator's event
// queue (bounded tie-break reordering and small wake jitter) plus optional
// randomized fault schedules, and validates the MOESI coherence invariants,
// the URPC transport invariants (FIFO exactly-once, no slot reuse before
// ack, ack conservation) and kvstore linearizability against the recorded
// trace.
//
// Usage:
//
//	mkcheck [-seeds N] [-seed-base B] [-depth D] [-jitter J] [-faults] [-directory]
//	        [-workloads kv,kvfailover,urpc,monitor] [-parallel N] [-no-shrink] [-v]
//	mkcheck -workloads W -replay SCRIPT -seed-base SEED [-faults] [-directory]
//
// With -directory every run uses the directory coherence protocol instead of
// broadcast; the MOESI oracle then additionally cross-checks the home-node
// sharer bitmaps against its shadow directory.
//
// On failure, mkcheck shrinks the first failing run's perturbation list by
// delta debugging to a 1-minimal script and prints a ready-to-paste -replay
// invocation, then exits 1. The sweep is deterministic: the same flags always
// explore the same schedules, regardless of -parallel.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"multikernel/internal/check"
	"multikernel/internal/harness"
	"multikernel/internal/sim"
)

func main() {
	var (
		seeds     = flag.Int("seeds", 20, "number of seeds per workload")
		seedBase  = flag.Uint64("seed-base", 1, "first seed (or the seed for -replay)")
		depth     = flag.Int("depth", 64, "max perturbations per run")
		jitter    = flag.Uint64("jitter", uint64(check.DefaultMaxJitter), "max wake jitter in cycles")
		faults    = flag.Bool("faults", false, "arm a seeded fault schedule per run")
		directory = flag.Bool("directory", false, "run under directory coherence instead of broadcast")
		wls       = flag.String("workloads", strings.Join(check.WorkloadNames(), ","), "comma-separated workloads")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker threads")
		noShrink  = flag.Bool("no-shrink", false, "skip minimizing failing runs")
		replay    = flag.String("replay", "", "replay one perturbation script (\"none\" or N:jitter:pri,...)")
		verbose   = flag.Bool("v", false, "print every run, not just failures")
	)
	flag.Parse()
	harness.SetParallelism(*parallel)

	var names []string
	for _, w := range strings.Split(*wls, ",") {
		if w = strings.TrimSpace(w); w != "" {
			names = append(names, w)
		}
	}

	if *replay != "" {
		script, err := check.ParseScript(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mkcheck:", err)
			os.Exit(2)
		}
		if len(names) != 1 {
			fmt.Fprintln(os.Stderr, "mkcheck: -replay needs exactly one -workloads entry")
			os.Exit(2)
		}
		r := check.RunOne(check.RunConfig{Workload: names[0], Seed: *seedBase, Script: script, Faults: *faults, Directory: *directory})
		report(r, *verbose)
		if r.Failed() {
			os.Exit(1)
		}
		fmt.Printf("replay ok: %s seed %d, %d perturbations applied\n", r.Workload, r.Seed, len(r.Applied))
		return
	}

	seedList := make([]uint64, *seeds)
	for i := range seedList {
		seedList[i] = *seedBase + uint64(i)
	}
	start := time.Now()
	results := check.Run(check.Config{
		Workloads: names,
		Seeds:     seedList,
		Depth:     *depth,
		MaxJitter: sim.Time(*jitter),
		Faults:    *faults,
		Directory: *directory,
	})

	failed := 0
	var firstFail *check.Result
	for i := range results {
		r := results[i]
		if r.Failed() {
			failed++
			if firstFail == nil {
				firstFail = &results[i]
			}
		}
		report(r, *verbose)
	}
	fmt.Printf("mkcheck: %d runs (%d workloads x %d seeds, depth %d, faults %v) in %.1fs: %d failed\n",
		len(results), len(names), len(seedList), *depth, *faults, time.Since(start).Seconds(), failed)

	if firstFail != nil {
		if !*noShrink {
			cfg := check.RunConfig{Workload: firstFail.Workload, Seed: firstFail.Seed,
				Depth: *depth, MaxJitter: sim.Time(*jitter), Faults: *faults, Directory: *directory}
			min := check.Shrink(cfg, firstFail.Applied)
			fmt.Printf("shrunk %s seed %d from %d to %d perturbations\n",
				firstFail.Workload, firstFail.Seed, len(firstFail.Applied), len(min))
			fmt.Printf("reproduce with:\n  mkcheck -workloads %s -seed-base %d -replay %s%s\n",
				firstFail.Workload, firstFail.Seed, check.FormatScript(min), faultFlag(*faults)+dirFlag(*directory))
		}
		os.Exit(1)
	}
}

func report(r check.Result, verbose bool) {
	if !r.Failed() {
		if verbose {
			fmt.Printf("ok   %-8s seed %-4d %d perturbations, %d events\n",
				r.Workload, r.Seed, len(r.Applied), r.Events)
		}
		return
	}
	fmt.Printf("FAIL %-8s seed %-4d %d perturbations (%s)\n",
		r.Workload, r.Seed, len(r.Applied), check.FormatScript(r.Applied))
	for _, v := range r.Violations {
		fmt.Printf("     %s\n", v)
	}
}

func faultFlag(on bool) string {
	if on {
		return " -faults"
	}
	return ""
}

func dirFlag(on bool) string {
	if on {
		return " -directory"
	}
	return ""
}
