// Command mktop prints the topology of each simulated test platform and the
// NUMA-aware multicast trees the system knowledge base derives from it — the
// routes behind Figure 6's best-performing shootdown protocol.
package main

import (
	"flag"
	"fmt"

	"multikernel/internal/sim"
	"multikernel/internal/skb"
	"multikernel/internal/topo"
)

func main() {
	src := flag.Int("source", 0, "multicast tree source core")
	flag.Parse()

	for _, m := range topo.AllMachines() {
		fmt.Printf("%v\n", m)
		fmt.Printf("  links:")
		for _, l := range m.Links {
			fmt.Printf(" %d-%d", l.A, l.B)
		}
		fmt.Printf("\n  diameter: %d hops\n", m.MaxHops())
		for s := 0; s < m.NSockets; s++ {
			fmt.Printf("  socket %d: cores %v\n", s, m.CoresOf(topo.SocketID(s)))
		}

		kb := skb.New(m)
		kb.Discover()
		kb.Measure(func(a, b topo.CoreID) sim.Time { return 2*m.TransferLat(b, a) + 160 })
		if *src < m.NumCores() {
			tree := kb.MulticastTree(topo.CoreID(*src), nil)
			fmt.Printf("  multicast tree from core %d (latency-descending):\n", *src)
			for _, g := range tree.Groups {
				fmt.Printf("    agg core %-2d (lat %4d cycles) -> children %v\n", g.Agg, g.Latency, g.Children)
			}
			fmt.Printf("    local children: %v\n", tree.Local)
		}
		fmt.Println()
	}
}
