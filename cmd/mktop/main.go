// Command mktop prints the topology of each simulated test platform and the
// NUMA-aware multicast trees the system knowledge base derives from it — the
// routes behind Figure 6's best-performing shootdown protocol.
//
// With -metrics, it also boots a multikernel on each machine, drives a burst
// of NUMA-aware coordinated unmaps through it, and renders the per-link
// interconnect traffic from the engine's metrics registry as a utilization
// heat table — showing how the multicast trees spread shootdown traffic over
// the point-to-point fabric.
package main

import (
	"flag"
	"fmt"
	"sort"
	"strings"

	"multikernel"
	"multikernel/internal/memory"
	"multikernel/internal/monitor"
	"multikernel/internal/sim"
	"multikernel/internal/skb"
	"multikernel/internal/stats"
	"multikernel/internal/topo"
)

func main() {
	src := flag.Int("source", 0, "multicast tree source core")
	showMetrics := flag.Bool("metrics", false, "run an unmap workload and print per-link utilization heat")
	flag.Parse()

	for _, m := range topo.AllMachines() {
		fmt.Printf("%v\n", m)
		fmt.Printf("  links:")
		for _, l := range m.Links {
			fmt.Printf(" %d-%d", l.A, l.B)
		}
		fmt.Printf("\n  diameter: %d hops\n", m.MaxHops())
		for s := 0; s < m.NSockets; s++ {
			fmt.Printf("  socket %d: cores %v\n", s, m.CoresOf(topo.SocketID(s)))
		}

		kb := skb.New(m)
		kb.Discover()
		kb.Measure(func(a, b topo.CoreID) sim.Time { return 2*m.TransferLat(b, a) + 160 })
		if *src < m.NumCores() {
			tree := kb.MulticastTree(topo.CoreID(*src), nil)
			fmt.Printf("  multicast tree from core %d (latency-descending):\n", *src)
			for _, g := range tree.Groups {
				fmt.Printf("    agg core %-2d (lat %4d cycles) -> children %v\n", g.Agg, g.Latency, g.Children)
			}
			fmt.Printf("    local children: %v\n", tree.Local)
		}
		if *showMetrics {
			fmt.Print(linkHeat(m))
		}
		fmt.Println()
	}
}

// linkHeat boots a multikernel on m, runs one coordinated unmap from every
// socket's first core, and renders the per-link dword counters from the
// metrics registry as a heat table.
func linkHeat(m *topo.Machine) string {
	const linkGBps = 8.0 // nominal HyperTransport-class point-to-point link

	e := multikernel.NewEngine(1)
	defer e.Close()
	sys := multikernel.Boot(e, m)
	e.Spawn("heat", func(p *sim.Proc) {
		for s := 0; s < m.NSockets; s++ {
			init := m.CoresOf(topo.SocketID(s))[0]
			base := memory.Addr(0x100000 + uint64(s)*0x10000)
			sys.Net.Monitor(init).Unmap(p, base, 4096, nil, monitor.NUMAAware)
		}
	})
	e.Run()
	elapsed := uint64(e.Now())

	// One registry counter per link direction, named interconnect.link.A-B.dwords.
	snap := e.Metrics().Snapshot()
	type row struct {
		name   string
		dwords uint64
		util   float64
	}
	var rows []row
	var peak float64
	for _, name := range snap.Names() {
		if !strings.HasPrefix(name, "interconnect.link.") {
			continue
		}
		link := strings.TrimSuffix(strings.TrimPrefix(name, "interconnect.link."), ".dwords")
		var a, b topo.SocketID
		if _, err := fmt.Sscanf(link, "%d-%d", &a, &b); err != nil {
			continue
		}
		u := sys.Fabric.Utilization(a, b, elapsed, linkGBps)
		rows = append(rows, row{link, snap.Counters[name], u})
		if u > peak {
			peak = u
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })

	t := &stats.Table{
		Title:   fmt.Sprintf("per-link traffic, %d NUMA-aware unmaps, %d cycles", m.NSockets, elapsed),
		Columns: []string{"link", "dwords", "util", "heat"},
	}
	for _, r := range rows {
		heat := ""
		if peak > 0 {
			heat = strings.Repeat("#", int(r.util/peak*20+0.5))
		}
		t.AddRow(r.name, fmt.Sprintf("%d", r.dwords), fmt.Sprintf("%.4f%%", r.util*100), heat)
	}
	return t.Render()
}
