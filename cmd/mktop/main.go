// Command mktop prints the topology of each simulated test platform and the
// NUMA-aware multicast trees the system knowledge base derives from it — the
// routes behind Figure 6's best-performing shootdown protocol.
//
// With -metrics, it also boots a multikernel on each machine, drives a burst
// of NUMA-aware coordinated unmaps through it, and renders the per-link
// interconnect traffic as a utilization heat table — showing how the
// multicast trees spread shootdown traffic over the point-to-point fabric.
// By default the table comes from the observability plane's committed
// time-series store (sampled at -obs-interval cycles), so each link also
// reports its peak single-window utilization — the burstiness a whole-run
// average hides. -obs-interval 0 falls back to the original single
// end-of-run registry snapshot.
package main

import (
	"flag"
	"fmt"
	"sort"
	"strings"

	"multikernel"
	"multikernel/internal/memory"
	"multikernel/internal/monitor"
	"multikernel/internal/obs"
	"multikernel/internal/sim"
	"multikernel/internal/skb"
	"multikernel/internal/stats"
	"multikernel/internal/topo"
)

func main() {
	src := flag.Int("source", 0, "multicast tree source core")
	showMetrics := flag.Bool("metrics", false, "run an unmap workload and print per-link utilization heat")
	obsInterval := flag.Uint64("obs-interval", 20_000,
		"sampling interval (cycles) for the observability plane behind -metrics; 0 = single end-of-run snapshot")
	flag.Parse()

	for _, m := range topo.AllMachines() {
		fmt.Printf("%v\n", m)
		fmt.Printf("  links:")
		for _, l := range m.Links {
			fmt.Printf(" %d-%d", l.A, l.B)
		}
		fmt.Printf("\n  diameter: %d hops\n", m.MaxHops())
		for s := 0; s < m.NSockets; s++ {
			fmt.Printf("  socket %d: cores %v\n", s, m.CoresOf(topo.SocketID(s)))
		}

		kb := skb.New(m)
		kb.Discover()
		kb.Measure(func(a, b topo.CoreID) sim.Time { return 2*m.TransferLat(b, a) + 160 })
		if *src < m.NumCores() {
			tree := kb.MulticastTree(topo.CoreID(*src), nil)
			fmt.Printf("  multicast tree from core %d (latency-descending):\n", *src)
			for _, g := range tree.Groups {
				fmt.Printf("    agg core %-2d (lat %4d cycles) -> children %v\n", g.Agg, g.Latency, g.Children)
			}
			fmt.Printf("    local children: %v\n", tree.Local)
		}
		if *showMetrics {
			fmt.Print(linkHeat(m, sim.Time(*obsInterval)))
		}
		fmt.Println()
	}
}

// linkHeat boots a multikernel on m, runs one coordinated unmap from every
// socket's first core, and renders per-link traffic as a heat table. With
// interval > 0 the numbers come from the observability plane's committed
// time-series store, which also yields each link's peak single-window
// utilization; with interval 0 it falls back to a single end-of-run registry
// snapshot.
func linkHeat(m *topo.Machine, interval sim.Time) string {
	const linkGBps = 8.0 // nominal HyperTransport-class point-to-point link

	e := multikernel.NewEngine(1)
	defer e.Close()
	sys := multikernel.Boot(e, m)
	var pl *obs.Plane
	if interval > 0 {
		pl = obs.NewPlane(e, sys.Cache, sys.KB, obs.Config{Interval: interval})
		pl.Start()
	}
	var done sim.Time
	e.Spawn("heat", func(p *sim.Proc) {
		for s := 0; s < m.NSockets; s++ {
			init := m.CoresOf(topo.SocketID(s))[0]
			base := memory.Addr(0x100000 + uint64(s)*0x10000)
			sys.Net.Monitor(init).Unmap(p, base, 4096, nil, monitor.NUMAAware)
		}
		done = p.Now()
	})
	if pl != nil {
		// Sampler daemons keep the event queue alive, so run in steps until
		// the workload quiesces, then long enough for its last window to ride
		// up the tree and commit.
		for done == 0 {
			e.RunUntil(e.Now() + 10*interval)
		}
		e.RunUntil(done + 4*interval)
	} else {
		e.Run()
	}
	elapsed := uint64(e.Now())

	type row struct {
		name     string
		dwords   uint64
		util     float64
		peakWin  float64
		haveWins bool
	}
	var rows []row
	var peak float64
	addRow := func(name string, dwords uint64, a, b topo.SocketID, peakDelta int64, haveWins bool) {
		u := sys.Fabric.Utilization(a, b, elapsed, linkGBps)
		// Peak-window utilization from the hottest committed delta: bytes
		// over one interval against the link's nominal rate.
		pw := float64(peakDelta) * 4 * m.ClockGHz / (float64(interval) * linkGBps)
		rows = append(rows, row{name, dwords, u, pw, haveWins})
		if u > peak {
			peak = u
		}
	}
	parseLink := func(name string) (string, topo.SocketID, topo.SocketID, bool) {
		if !strings.HasPrefix(name, "interconnect.link.") {
			return "", 0, 0, false
		}
		link := strings.TrimSuffix(strings.TrimPrefix(name, "interconnect.link."), ".dwords")
		var a, b topo.SocketID
		if _, err := fmt.Sscanf(link, "%d-%d", &a, &b); err != nil {
			return "", 0, 0, false
		}
		return link, a, b, true
	}
	if pl != nil {
		// One committed counter series per link direction; Total is the
		// exact whole-run dword count, the points its window deltas.
		st := pl.Store()
		for _, name := range st.Names() {
			link, a, b, ok := parseLink(name)
			if !ok {
				continue
			}
			s := st.Get(name)
			var peakDelta int64
			for _, p := range s.Points() {
				if p.V > peakDelta {
					peakDelta = p.V
				}
			}
			addRow(link, uint64(s.Total()), a, b, peakDelta, true)
		}
	} else {
		// One registry counter per link direction, read once at the end.
		snap := e.Metrics().Snapshot()
		for _, name := range snap.Names() {
			link, a, b, ok := parseLink(name)
			if !ok {
				continue
			}
			addRow(link, snap.Counters[name], a, b, 0, false)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })

	src := "registry snapshot"
	if pl != nil {
		src = fmt.Sprintf("obs store, %d-cycle windows", interval)
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("per-link traffic, %d NUMA-aware unmaps, %d cycles (%s)", m.NSockets, elapsed, src),
		Columns: []string{"link", "dwords", "util", "peak win", "heat"},
	}
	for _, r := range rows {
		heat := ""
		if peak > 0 {
			heat = strings.Repeat("#", int(r.util/peak*20+0.5))
		}
		pw := "-"
		if r.haveWins {
			pw = fmt.Sprintf("%.4f%%", r.peakWin*100)
		}
		t.AddRow(r.name, fmt.Sprintf("%d", r.dwords), fmt.Sprintf("%.4f%%", r.util*100), pw, heat)
	}
	return t.Render()
}
