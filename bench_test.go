// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment and reports its headline
// quantities as custom metrics (simulated cycles or rates — wall-clock ns/op
// only reflects how fast the simulator runs, not the modelled system).
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// Experiment sweeps fan their points across the internal/harness worker pool
// (default GOMAXPROCS workers; override with -harness.parallel N). Reported
// simulated-cycle metrics are independent of the pool size: each point is a
// hermetic, seed-deterministic engine run.
package multikernel_test

import (
	"flag"
	"os"
	"runtime"
	"testing"

	"multikernel/internal/apps"
	"multikernel/internal/baseline"
	"multikernel/internal/expt"
	"multikernel/internal/harness"
	"multikernel/internal/monitor"
	"multikernel/internal/topo"
)

var benchParallel = flag.Int("harness.parallel", runtime.GOMAXPROCS(0),
	"experiment points to run concurrently (1 = serial)")

func TestMain(m *testing.M) {
	flag.Parse()
	harness.SetParallelism(*benchParallel)
	os.Exit(m.Run())
}

// BenchmarkFig3 regenerates Figure 3's headline points: 8-line updates via
// shared memory versus messages at 16 cores.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := expt.NewEnv(topo.AMD4x4(), 1)
		shm := apps.SHMUpdate(env.E, env.Sys, 16, 8, 10).ClientLatency.Percentile(50)
		env.Close()
		env = expt.NewEnv(topo.AMD4x4(), 1)
		msg := apps.MSGUpdate(env.E, env.Sys, 15, 8, 10).ClientLatency.Percentile(50)
		env.Close()
		b.ReportMetric(shm, "SHM8@16_cycles")
		b.ReportMetric(msg, "MSG8@16_cycles")
	}
}

// BenchmarkTable1 regenerates Table 1: LRPC latency per machine.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := expt.Table1(24)
		if len(t.Rows) != 4 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkTable2 regenerates Table 2: URPC latency and throughput.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := expt.MeasureURPC(topo.AMD2x2(), 0, 2, 8, false)
		b.ReportMetric(r.Latency.Mean(), "onehop_latency_cycles")
		b.ReportMetric(r.Throughput, "onehop_msgs_per_kcycle")
	}
}

// BenchmarkTable3 regenerates Table 3: URPC vs L4 IPC.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := expt.Table3(8)
		if len(t.Rows) != 2 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFig6 regenerates Figure 6's 32-core points for all four
// protocols.
func BenchmarkFig6(b *testing.B) {
	m := topo.AMD8x4()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(monitor.RawShootdownLatency(m, monitor.Broadcast, 32, 3), "broadcast@32_cycles")
		b.ReportMetric(monitor.RawShootdownLatency(m, monitor.Unicast, 32, 3), "unicast@32_cycles")
		b.ReportMetric(monitor.RawShootdownLatency(m, monitor.Multicast, 32, 3), "multicast@32_cycles")
		b.ReportMetric(monitor.RawShootdownLatency(m, monitor.NUMAAware, 32, 3), "numa@32_cycles")
	}
}

// BenchmarkFig7 regenerates Figure 7's 32-core points: full unmap latency on
// all three systems.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := expt.Fig7(2)
		bf, _ := f.Get("Barrelfish").YAt(32)
		lx, _ := f.Get("Linux").YAt(32)
		wn, _ := f.Get("Windows").YAt(32)
		b.ReportMetric(bf, "barrelfish@32_cycles")
		b.ReportMetric(lx, "linux@32_cycles")
		b.ReportMetric(wn, "windows@32_cycles")
	}
}

// BenchmarkFig8 regenerates Figure 8's 32-core points: 2PC single-operation
// latency versus pipelined per-operation cost.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := expt.Fig8(2)
		single, _ := f.Get("Single-operation latency").YAt(32)
		piped, _ := f.Get("Cost when pipelining").YAt(32)
		b.ReportMetric(single, "single@32_cycles")
		b.ReportMetric(piped, "pipelined@32_cycles")
	}
}

// BenchmarkTable4 regenerates Table 4: IP loopback, both systems.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bf := expt.LoopbackBF()
		lx := expt.LoopbackLinux()
		b.ReportMetric(bf.ThroughputMbit, "barrelfish_Mbit/s")
		b.ReportMetric(lx.ThroughputMbit, "linux_Mbit/s")
		b.ReportMetric(bf.DcachePerPkt, "barrelfish_dcache/pkt")
		b.ReportMetric(lx.DcachePerPkt, "linux_dcache/pkt")
	}
}

// BenchmarkFig9 regenerates one Figure 9 point per workload: 16-core runs on
// both systems.
func BenchmarkFig9(b *testing.B) {
	for _, wl := range apps.NASWorkloads() {
		wl := wl
		wl.Iters = wl.Iters/4 + 1
		b.Run(wl.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bf, lx := expt.RunFig9Workload(wl, 16)
				b.ReportMetric(bf, "barrelfish_cycles")
				b.ReportMetric(lx, "linux_cycles")
			}
		})
	}
}

// BenchmarkUDPEcho regenerates §5.4's network throughput result.
func BenchmarkUDPEcho(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := expt.UDPEchoBF(150)
		b.ReportMetric(r.AchievedMbit, "barrelfish_Mbit/s")
	}
}

// BenchmarkWebServer regenerates §5.4's web-server result.
func BenchmarkWebServer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bf := expt.WebServerBF(false, 12_000_000)
		lx := expt.WebServerLinux(12_000_000)
		b.ReportMetric(bf.ReqPerSec, "barrelfish_req/s")
		b.ReportMetric(lx.ReqPerSec, "linux_req/s")
	}
}

// BenchmarkWebServerDB regenerates §5.4's database-backed web result.
func BenchmarkWebServerDB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := expt.WebServerBF(true, 12_000_000)
		b.ReportMetric(r.ReqPerSec, "req/s")
	}
}

// BenchmarkBaselineUnmap isolates the comparator's serial-IPI shootdown.
func BenchmarkBaselineUnmap(b *testing.B) {
	env := expt.NewEnv(topo.AMD8x4(), 1)
	defer env.Close()
	_ = baseline.New(env.E, env.Sys, env.Kern, baseline.Linux)
	b.ReportMetric(0, "placeholder")
	// The full measurement lives in Fig7; this benchmark exists so the
	// baseline path is exercised under -bench as well.
	for i := 0; i < b.N; i++ {
		f := expt.Fig7(1)
		lx, _ := f.Get("Linux").YAt(16)
		b.ReportMetric(lx, "linux@16_cycles")
	}
}

// BenchmarkAblations runs the design-choice ablations.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.AblationPrefetch(4)
		expt.AblationPipelineDepth(2)
	}
}

// BenchmarkExtensions runs the beyond-the-paper experiments: mesh scaling,
// the shared-replica optimization and run-queue contention.
func BenchmarkExtensions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := expt.ExtScaling(2)
		bf, _ := f.Get("Barrelfish unmap").YAt(64)
		lx, _ := f.Get("Linux unmap").YAt(64)
		b.ReportMetric(bf, "barrelfish@64_cycles")
		b.ReportMetric(lx, "linux@64_cycles")
	}
}
