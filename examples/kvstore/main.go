// kvstore demonstrates the multikernel's answer to partial failure: a
// key-value service sharded across server cores by consistent hashing, each
// shard replicated over URPC to an in-sync set of backups. A write is
// acknowledged only after every in-sync backup holds it, so when primaries
// fail-stop mid-run the monitors' deadline detection excises them from the
// replicated view, a backup is promoted, a spare core is drafted and brought
// current by anti-entropy — and every acknowledged write survives.
//
// Flags: -shards and -replicas size the cluster, -kill fail-stops that many
// primaries while clients are writing, and -workers runs the whole scenario —
// fail-stops, detection, promotion, anti-entropy included — on the parallel
// engine; the output is byte-identical at every worker count.
package main

import (
	"flag"
	"fmt"

	"multikernel"
	"multikernel/internal/apps"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

func main() {
	shards := flag.Int("shards", 4, "consistent-hash shards")
	replicas := flag.Int("replicas", 2, "copies per shard, primary included")
	kill := flag.Int("kill", 1, "primaries to fail-stop mid-run")
	seed := flag.Uint64("seed", 7, "engine seed")
	workers := flag.Int("workers", 0, "host workers for the parallel engine (0 = serial reference engine)")
	flag.Parse()
	if *kill > 3 {
		*kill = 3 // leave enough cores for the shards to live somewhere
	}

	m := multikernel.AMD4x4()
	var e *sim.Engine
	var sys *multikernel.System
	var drive func(sim.Time)
	var closeEng func()
	if *workers > 0 {
		pe, psys := multikernel.BootOnWorkers(m, *seed, *workers)
		e, sys = pe.Part(0), psys
		drive, closeEng = pe.RunUntil, pe.Close
		fmt.Printf("booted on %v (parallel engine, %d workers)\n\n", m, *workers)
	} else {
		e = multikernel.NewEngine(*seed)
		sys = multikernel.Boot(e, m)
		drive, closeEng = e.RunUntil, e.Close
		fmt.Printf("booted on %v\n\n", m)
	}
	sys.Net.EnableFaultTolerance(100_000)

	servers := []topo.CoreID{2, 3, 6, 7}
	spares := []topo.CoreID{8, 12}
	cluster := apps.NewKVCluster(e, sys.Cache, sys.Net, apps.ClusterConfig{
		Shards:   *shards,
		Replicas: *replicas,
		Rows:     16,
		Servers:  servers,
		Spares:   spares,
	})
	cluster.StartFailureDetector(sys.Net, 0, 400_000)

	showMap := func(label string) {
		fmt.Println(label)
		for s := 0; s < cluster.Shards(); s++ {
			state := "ok"
			if cluster.Degraded(s) {
				state = "re-replicating"
			}
			if cluster.Primary(s) < 0 {
				state = "DOWN"
			}
			fmt.Printf("  shard %d: primary core %-2d (%s)\n", s, cluster.Primary(s), state)
		}
	}
	showMap(fmt.Sprintf("shard map (%d shards x %d replicas on servers %v, spares %v):",
		cluster.Shards(), *replicas, servers, spares))

	// Fail-stop primaries while the clients below are mid-stream. Victims
	// are resolved at kill time so each kill hits a core that is actually
	// leading a shard at that moment.
	type killRec struct {
		at       sim.Time
		core     topo.CoreID
		affected map[uint64]bool
	}
	var kills []killRec
	killed := map[topo.CoreID]bool{}
	clientEnd := sim.Time(2_000_000 + *kill*6_000_000)
	for i := 0; i < *kill; i++ {
		e.After(sim.Time(1_500_000+i*6_000_000), func() {
			for s := 0; s < cluster.Shards(); s++ {
				victim := cluster.Primary(s)
				if victim < 0 || killed[victim] {
					continue
				}
				killed[victim] = true
				aff := make(map[uint64]bool)
				for k := uint64(0); k < 8; k++ {
					if cluster.Primary(cluster.ShardOfKey(k)) == victim {
						aff[k] = true
					}
				}
				fmt.Printf("t=%-9d FAIL-STOP core %d (primary of shard %d)\n", e.Now(), victim, s)
				kills = append(kills, killRec{at: e.Now(), core: victim, affected: aff})
				cluster.KillCore(victim)
				sys.Net.FailStop(victim)
				return
			}
		})
	}

	// Two writer clients on disjoint key halves (so "last acknowledged value
	// per key" is well defined), both also reading across the whole space.
	type completion struct {
		at  sim.Time
		key uint64
	}
	var completions []completion
	lastAcked := map[uint64]uint64{}
	var acked, errs int
	done := sim.NewWaitGroup(e)
	clientCores := []topo.CoreID{1, 5}
	done.Add(len(clientCores))
	for ci, c := range clientCores {
		ci, cl := ci, cluster.Connect(c)
		e.Spawn(fmt.Sprintf("client%d", c), func(p *sim.Proc) {
			defer done.Done()
			for i := 0; p.Now() < clientEnd; i++ {
				key := uint64(2*(i%4) + ci) // client 0 writes even keys, client 1 odd
				val := uint64(i + 1)
				if ok, err := cl.Put(p, key, val); err == nil && ok {
					if val > lastAcked[key] {
						lastAcked[key] = val
					}
					acked++
					completions = append(completions, completion{at: p.Now(), key: key})
				} else {
					errs++
				}
				if _, _, err := cl.Get(p, uint64(i%8)); err == nil {
					completions = append(completions, completion{at: p.Now(), key: uint64(i % 8)})
				}
				p.Sleep(40_000)
			}
		})
	}

	// After the clients drain, verify the tentpole invariant: every key must
	// read back at least its last acknowledged value (a newer unacked retry
	// may have landed; an older one means an acked write was rolled back).
	verifier := cluster.Connect(10)
	e.Spawn("verify", func(p *sim.Proc) {
		done.Wait(p)
		p.Sleep(2_000_000) // let the last fail-over finish re-replicating
		lost := 0
		for k := uint64(0); k < 8; k++ {
			want, wrote := lastAcked[k]
			if !wrote {
				continue
			}
			got, found, err := verifier.Get(p, k)
			switch {
			case err != nil || !found:
				fmt.Printf("  key %d: last acked %-5d  read FAILED (%v)\n", k, want, err)
				lost++
			case got < want:
				fmt.Printf("  key %d: last acked %-5d  read %-5d  *** ACKED WRITE LOST ***\n", k, want, got)
				lost++
			default:
				fmt.Printf("  key %d: last acked %-5d  read %-5d  ok\n", k, want, got)
			}
		}
		fmt.Println()
		for _, kr := range kills {
			for _, c := range completions {
				if c.at >= kr.at && kr.affected[c.key] {
					fmt.Printf("core %d fail-over: first successful op on an affected shard after %d cycles (%.0f ns)\n",
						kr.core, c.at-kr.at, m.Nanoseconds(c.at-kr.at))
					break
				}
			}
		}
		st := cluster.Stats()
		fmt.Printf("\n%d writes acked, %d requests shed or failed during fail-over\n", acked, errs)
		fmt.Printf("promotions=%d recruits=%d anti-entropy syncs=%d demotions=%d shed=%d\n",
			st.Promotions, st.Recruits, st.Syncs, st.Demotions, st.Shed)
		showMap("final shard map:")
		if lost > 0 {
			panic("acknowledged writes were lost")
		}
		fmt.Printf("\nVERIFIED: no acknowledged write lost across %d fail-stop(s)\n", len(kills))
	})
	drive(clientEnd + 30_000_000)
	closeEng()
}
