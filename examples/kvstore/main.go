// kvstore demonstrates globally-agreed state management on the multikernel:
// a replicated key-value service whose schema changes (modelled as
// capability retypes over its storage) are coordinated with the monitors'
// two-phase commit, including what happens when two cores race conflicting
// changes — one commits, one aborts, and every replica stays consistent.
package main

import (
	"fmt"

	"multikernel"
	"multikernel/internal/apps"
	"multikernel/internal/caps"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

func main() {
	m := multikernel.AMD4x4()
	e := multikernel.NewEngine(7)
	sys := multikernel.Boot(e, m)
	fmt.Printf("booted on %v\n\n", m)

	// A database service runs on core 1; clients on three other sockets
	// query it over URPC.
	kv := apps.NewKVStore(sys.Cache, 1, 100_000)
	svc := apps.NewKVService(e, kv)
	clients := []topo.CoreID{4, 8, 12}
	done := sim.NewWaitGroup(e)
	done.Add(len(clients))
	for _, c := range clients {
		c := c
		cli := svc.Connect(c)
		e.Spawn(fmt.Sprintf("client%d", c), func(p *sim.Proc) {
			defer done.Done()
			start := p.Now()
			const queries = 200
			for i := 0; i < queries; i++ {
				key := uint64(int(c)*1000 + i)
				if _, ok := cli.Select(p, key); !ok {
					panic("row missing")
				}
			}
			per := (p.Now() - start) / queries
			fmt.Printf("core %-2d ran %d SELECTs over URPC: %d cycles each (%.0f ns)\n",
				c, queries, per, m.Nanoseconds(per))
		})
	}

	// Meanwhile, two cores race conflicting retypes of the same storage
	// region: the monitors' two-phase commit lets exactly one win.
	region := sys.Mem.Alloc(64*1024, 0)
	results := make(map[topo.CoreID]bool)
	race := sim.NewWaitGroup(e)
	race.Add(2)
	for _, c := range []topo.CoreID{0, 15} {
		c := c
		e.Spawn(fmt.Sprintf("retyper%d", c), func(p *sim.Proc) {
			defer race.Done()
			to := caps.Frame
			if c == 15 {
				to = caps.PageTable
			}
			level := 0
			if to == caps.PageTable {
				level = 1
			}
			results[c] = sys.GlobalRetype(p, c, region.Base, 4096, to, level)
		})
	}

	e.Spawn("main", func(p *sim.Proc) {
		done.Wait(p)
		race.Wait(p)
		fmt.Printf("\nconflicting retype race: core 0 committed=%v, core 15 committed=%v\n",
			results[0], results[15])
		if results[0] == results[15] {
			fmt.Println("(both or neither — the losing side may retry after backoff)")
		}
		if err := sys.CheckCapConsistency(); err != nil {
			panic(err)
		}
		fmt.Println("capability replicas on all 16 cores verified consistent")
	})
	e.Run()
	e.Close()
}
