// hotplug demonstrates the §3.3 claim that replication makes changes to the
// running core set natural: cores are powered off to save energy, the
// replicated membership view updates everywhere through the same agreement
// machinery as TLB shootdown, coordinated operations transparently skip the
// sleeping cores, and the cores rejoin later without disturbing the system.
package main

import (
	"fmt"

	"multikernel"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
	"multikernel/internal/vm"
)

func main() {
	m := multikernel.AMD8x4()
	e := multikernel.NewEngine(3)
	sys := multikernel.Boot(e, m)
	fmt.Printf("booted on %v\n\n", m)

	e.Spawn("init", func(p *sim.Proc) {
		dom, err := sys.NewDomain(p, "app", multikernel.AllCores(m))
		if err != nil {
			panic(err)
		}
		va, _ := dom.MapAnon(p, 0, vm.PageSize, vm.Read|vm.Write)
		for _, c := range dom.Team.Cores() {
			dom.Space.Access(p, c, va, false, 0)
		}

		unmapAll := func(label string) {
			va2, _ := dom.MapAnon(p, 0, vm.PageSize, vm.Read|vm.Write)
			start := p.Now()
			if err := dom.Unmap(p, 0, va2, vm.PageSize, multikernel.NUMAAware); err != nil {
				panic(err)
			}
			online := 0
			for c := 0; c < m.NumCores(); c++ {
				if sys.Net.Monitor(0).Online(topo.CoreID(c)) {
					online++
				}
			}
			fmt.Printf("%-28s unmap across %2d online cores: %6d cycles\n",
				label, online, p.Now()-start)
		}

		unmapAll("all 32 cores online:")

		// Power down socket 7 (cores 28-31) to save energy.
		for _, victim := range []topo.CoreID{28, 29, 30, 31} {
			if err := sys.Net.PowerOff(p, 0, victim); err != nil {
				panic(err)
			}
		}
		fmt.Println("\npowered off socket 7 (cores 28-31)")
		unmapAll("socket 7 sleeping:")

		// Half the machine down.
		for c := topo.CoreID(16); c < 28; c++ {
			if err := sys.Net.PowerOff(p, 0, c); err != nil {
				panic(err)
			}
		}
		fmt.Println("\npowered off cores 16-27 as well")
		unmapAll("16 cores sleeping:")

		// Bring everything back.
		for c := topo.CoreID(16); c < 32; c++ {
			if err := sys.Net.PowerOn(p, 0, c); err != nil {
				panic(err)
			}
		}
		fmt.Println("\nall cores powered back on")
		unmapAll("after rejoin:")
	})
	e.Run()
	e.Close()
}
