// tlbshootdown compares the four TLB-shootdown dissemination protocols of
// the paper's Figure 6 (broadcast, unicast, multicast, NUMA-aware multicast)
// on the 8×4-core AMD system, and then shows the full unmap path against the
// monolithic-kernel comparators — a miniature of Figures 6 and 7.
package main

import (
	"fmt"

	"multikernel/internal/baseline"
	"multikernel/internal/expt"
	"multikernel/internal/monitor"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

func main() {
	m := topo.AMD8x4()
	fmt.Printf("raw shootdown messaging on %v\n\n", m)
	fmt.Printf("%8s %12s %12s %12s %12s\n", "cores", "broadcast", "unicast", "multicast", "numa-aware")
	for _, n := range []int{4, 8, 16, 24, 32} {
		fmt.Printf("%8d", n)
		for _, proto := range []monitor.Protocol{monitor.Broadcast, monitor.Unicast, monitor.Multicast, monitor.NUMAAware} {
			fmt.Printf(" %12.0f", monitor.RawShootdownLatency(m, proto, n, 5))
		}
		fmt.Println()
	}

	fmt.Printf("\nfull unmap latency (cycles), message-based vs. serial IPIs:\n\n")
	fmt.Printf("%8s %12s %12s %12s\n", "cores", "barrelfish", "linux", "windows")
	for _, n := range []int{4, 16, 32} {
		bf := unmapBF(m, n)
		lx := unmapBase(m, baseline.Linux, n)
		wn := unmapBase(m, baseline.Windows, n)
		fmt.Printf("%8d %12.0f %12.0f %12.0f\n", n, bf, lx, wn)
	}
	fmt.Println("\nthe crossover is the paper's Figure 7 result: constant-ish message")
	fmt.Println("tree cost beats linearly-growing serial IPIs as cores increase.")
}

func unmapBF(m *topo.Machine, n int) float64 {
	return expt.UnmapLatencyBF(m, n, 3)
}

func unmapBase(m *topo.Machine, fl baseline.Flavor, n int) float64 {
	env := expt.NewEnv(m, 1)
	defer env.Close()
	k := baseline.New(env.E, env.Sys, env.Kern, fl)
	var total sim.Time
	env.E.Spawn("bench", func(p *sim.Proc) {
		targets := env.Cores(n)
		k.Unmap(p, 0, targets)
		start := p.Now()
		for i := 0; i < 3; i++ {
			k.Unmap(p, 0, targets)
		}
		total = (p.Now() - start) / 3
	})
	env.E.Run()
	return float64(total)
}
