// webserver reproduces the §5.4 service pipeline: an e1000 NIC on the
// simulated wire, its driver domain on one core, a web server domain on
// another, and a database service on a third, all connected by URPC — then
// drives it with an external httperf-style client fleet and reports
// sustained request throughput for static and database-backed pages.
package main

import (
	"flag"
	"fmt"

	"multikernel/internal/apps"
	"multikernel/internal/expt"
	"multikernel/internal/netstack"
	"multikernel/internal/sim"
	"multikernel/internal/topo"
)

func main() {
	workers := flag.Int("workers", 0, "host workers for the demo pipeline's parallel engine (0 = serial reference engine)")
	flag.Parse()

	m := topo.AMD2x2()
	fmt.Printf("web service pipeline on %v\n", m)
	fmt.Println("placement: NIC driver on core 2, web server on core 3, database on core 1")
	fmt.Println()

	// One illustrative request, end to end. With -workers the pipeline runs
	// on the parallel engine; the demo's counts are identical either way.
	demoOneRequest(*workers)

	// Sustained throughput, as measured by the experiment harness.
	window := sim.Time(30_000_000)
	static := expt.WebServerBF(false, window)
	linux := expt.WebServerLinux(window)
	db := expt.WebServerBF(true, window)
	fmt.Printf("sustained throughput over a %.0fms window:\n", float64(window)/(m.ClockGHz*1e9)*1e3)
	fmt.Printf("  static 4.1kB page, Barrelfish pipeline: %7.0f requests/s (%.1f Mbit/s)\n", static.ReqPerSec, static.Mbit)
	fmt.Printf("  static 4.1kB page, in-kernel comparator: %6.0f requests/s (%.1f Mbit/s)\n", linux.ReqPerSec, linux.Mbit)
	fmt.Printf("  database-backed page (URPC to core 1):   %6.0f requests/s\n", db.ReqPerSec)
}

func demoOneRequest(workers int) {
	m := topo.AMD2x2()
	env := expt.NewEnvWorkers(m, 9, workers)
	defer env.Close()

	w := netstack.NewWire(env.E, 1, m.ClockGHz)
	nic := netstack.NewNIC(env.E, env.Sys, "e1000", w, true)
	serverIP := netstack.IP4(10, 1, 1, 1)
	app := netstack.NewStack(env.E, env.Sys, "web", 3, serverIP)
	netstack.NewDriver(env.E, env.Sys, nic, 2, app)

	kv := apps.NewKVStore(env.Sys, 1, 10000)
	svc := apps.NewKVService(env.E, kv)
	ws := &apps.WebServer{Stack: app, Page: apps.StaticPage(), DB: svc.Connect(3)}
	env.E.Spawn("websrv", func(p *sim.Proc) {
		p.SetDaemon(true)
		ws.Serve(p)
	})

	gen := &apps.HTTPLoadGen{
		Wire: w, FromA: false,
		SrcIP: netstack.IP4(10, 1, 1, 99), DstIP: serverIP,
		DstMAC: app.MAC, Path: "/db/4242", Concurrency: 1,
	}
	w.Attach(nic, gen)
	gen.Start(env.E)
	env.RunUntil(3_000_000)
	gen.Stop()
	fmt.Printf("demo: served %d database request(s); %d bytes returned to the client\n",
		gen.Completed, gen.BytesIn)
	fmt.Printf("      server handled %d HTTP requests, database ran %d queries\n\n",
		ws.Requests, kv.Queries)
}
