// Quickstart: boot a multikernel on a simulated 4×4-core AMD machine,
// create a domain spanning all cores, share memory through its address
// space, and perform a coordinated unmap — the basic lifecycle of the
// public API.
package main

import (
	"fmt"

	"multikernel"
	"multikernel/internal/sim"
	"multikernel/internal/vm"
)

func main() {
	machine := multikernel.AMD4x4()
	engine := multikernel.NewEngine(42)
	sys := multikernel.Boot(engine, machine)
	fmt.Printf("booted on %v\n", machine)

	engine.Spawn("init", func(p *sim.Proc) {
		// A domain is a process spanning cores: a shared virtual address
		// space plus user-level thread dispatchers.
		dom, err := sys.NewDomain(p, "hello", multikernel.AllCores(machine))
		if err != nil {
			panic(err)
		}

		// Map anonymous memory: physical frames are allocated, retyped to
		// Frame capabilities and installed in real (simulated) page tables.
		va, err := dom.MapAnon(p, 0, vm.PageSize, vm.Read|vm.Write)
		if err != nil {
			panic(err)
		}
		fmt.Printf("t=%-8d mapped a page at %#x\n", p.Now(), uint64(va))

		// Every core can use the mapping; each first touch walks the page
		// table and fills that core's TLB.
		for _, c := range dom.Team.Cores() {
			if _, err := dom.Space.Access(p, c, va, true, uint64(c)+1); err != nil {
				panic(err)
			}
		}
		fmt.Printf("t=%-8d all %d cores wrote the page\n", p.Now(), len(dom.Team.Cores()))

		// Unmap coordinates all 16 monitors over URPC with the NUMA-aware
		// multicast tree; when it returns, no TLB anywhere still maps it.
		start := p.Now()
		if err := dom.Unmap(p, 0, va, vm.PageSize, multikernel.NUMAAware); err != nil {
			panic(err)
		}
		fmt.Printf("t=%-8d unmap + %d-core TLB shootdown took %d cycles (%.0f ns)\n",
			p.Now(), len(dom.Team.Cores()), p.Now()-start, machine.Nanoseconds(p.Now()-start))

		sys.VM.CheckNoStaleTLB(dom.Space.ID, va, vm.PageSize)
		fmt.Println("verified: no stale TLB entries on any core")
	})
	engine.Run()
}
